"""Adaptive multi-window campaigns (paper future work iv).

Section 7's last open direction: "study the problem in an online
adaptive setting where the partial results of the campaign can be taken
into account while deciding the next moves."  This module implements
the natural batched version of that setting:

* a campaign spans ``T`` time windows with one advertiser budget pool;
* at each window the host plans seeds with TI-CSRM (or any configured
  engine) against the *remaining* budgets, using the estimated payment
  for feasibility exactly as in the one-shot problem;
* the window's cascade then actually *realizes* (simulated under the
  same TIC model); the advertiser is charged realized engagements plus
  the incentives of the seeds actually used, and the spent amount is
  deducted from its budget;
* users engaged with an ad are frozen for it — they neither re-engage
  nor qualify as future seeds for any ad (one endorsement per user, the
  matroid constraint carried across windows);
* planning in later windows excludes frozen users, so observed outcomes
  steer subsequent seeding — the "adaptivity" of the setting.

Compared with spending the whole budget in one window, adaptivity hedges
estimation error: over-performing cascades consume budget (fewer future
seeds needed), under-performing ones leave budget for corrective
seeding.  ``bench_adaptive`` measures the realized-revenue difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import as_generator
from repro.errors import InstanceError
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.diffusion.simulate import simulate_cascade
from repro.graph.updates import compile_updates


@dataclass
class WindowOutcome:
    """Realized results of one campaign window."""

    window: int
    seeds_per_ad: list[list[int]]
    realized_engagements: list[int]
    realized_revenue: list[float]
    incentives_paid: list[float]
    remaining_budgets: list[float]

    @property
    def total_revenue(self) -> float:
        return float(sum(self.realized_revenue))


@dataclass
class CampaignResult:
    """Aggregate of an adaptive campaign."""

    windows: list[WindowOutcome] = field(default_factory=list)
    #: One JSON-able report per edge-update batch applied between
    #: windows (empty for a static campaign); warm campaigns carry the
    #: session's incremental-invalidation provenance here.
    mutations: list[dict] = field(default_factory=list)

    @property
    def total_revenue(self) -> float:
        return float(sum(w.total_revenue for w in self.windows))

    def revenue_per_ad(self, h: int) -> list[float]:
        totals = [0.0] * h
        for w in self.windows:
            for i in range(h):
                totals[i] += w.realized_revenue[i]
        return totals


class AdaptiveCampaign:
    """Run a multi-window incentivized campaign with feedback.

    Parameters
    ----------
    instance:
        The full-campaign RM instance; its budgets are the total pools.
    n_windows:
        Number of planning/realization rounds ``T``.
    planner_kwargs:
        Engine knobs for each window's plan (``eps``, ``theta_cap``,
        ``opt_lower``, ...) — compiled into an
        :class:`~repro.api.spec.EngineSpec` unless *spec* is given.
    budget_split:
        ``"even"`` plans each window with ``1/T`` of the remaining pool
        scaled by the windows left (i.e. remaining / windows_left), which
        spreads spend; ``"all"`` exposes the full remaining budget each
        window (greedy front-loading).
    seed:
        Master seed for planning randomness and cascade realization.
    algorithm:
        Any registered algorithm name (default TI-CSRM, the paper's
        cost-sensitive planner).
    spec:
        An explicit :class:`~repro.api.spec.EngineSpec` for the planner
        (overrides *planner_kwargs*); the per-window planner seed is
        applied on top.
    reuse_samples:
        Open one :class:`~repro.api.session.AllocationSession` for the
        whole campaign, so later windows adopt the RR sets earlier
        windows drew instead of resampling (valid: the windows share
        graph and probabilities; only budgets and the frozen mask
        change).  Warm solves store samples in shared prob-keyed
        stores, so plans differ from — but are statistically equivalent
        to — the cold per-window planner.
    edge_updates:
        Optional dynamic-graph schedule: ``edge_updates[k]`` is the
        edge-update batch (anything
        :func:`repro.graph.updates.normalize_updates` accepts) applied
        *after* window ``k`` realizes and before window ``k+1`` plans —
        the streaming setting of docs/ARCHITECTURE.md §14.  With
        ``reuse_samples`` the session repairs its warm RR stores
        incrementally via
        :meth:`~repro.api.session.AllocationSession.apply_edge_updates`;
        cold campaigns recompile the graph and probability vectors from
        scratch.  Both legs remap every ad's probabilities through the
        same deterministic :class:`~repro.graph.updates.UpdatePlan`, so
        they plan over identical post-update markets.  Per-batch
        reports land in :attr:`CampaignResult.mutations`.
    """

    def __init__(
        self,
        instance: RMInstance,
        n_windows: int = 3,
        planner_kwargs: dict | None = None,
        budget_split: str = "even",
        seed=None,
        algorithm: str = "TI-CSRM",
        spec=None,
        reuse_samples: bool = False,
        edge_updates=None,
    ) -> None:
        if n_windows < 1:
            raise InstanceError(f"n_windows must be >= 1, got {n_windows}")
        if budget_split not in ("even", "all"):
            raise InstanceError(f"unknown budget_split {budget_split!r}")
        self.instance = instance
        self.n_windows = int(n_windows)
        self.planner_kwargs = dict(planner_kwargs or {})
        self.budget_split = budget_split
        self.rng = as_generator(seed)
        self.algorithm = algorithm
        self.spec = spec
        self.reuse_samples = bool(reuse_samples)
        self.edge_updates = (
            [] if edge_updates is None else [list(batch or []) for batch in edge_updates]
        )
        if len(self.edge_updates) > max(self.n_windows - 1, 0):
            raise InstanceError(
                f"edge_updates has {len(self.edge_updates)} batches but a "
                f"{self.n_windows}-window campaign has only "
                f"{max(self.n_windows - 1, 0)} between-window boundaries"
            )

    def _planner_spec(self):
        from repro.api.spec import EngineSpec

        if self.spec is not None:
            return self.spec
        return EngineSpec(**self.planner_kwargs)

    def run(self) -> CampaignResult:
        """Execute all windows; returns realized outcomes."""
        from repro.api.session import AllocationSession
        from repro.api.solve import solve

        inst = self.instance
        h, n = inst.h, inst.n
        graph = inst.graph
        probs = [np.asarray(p, dtype=np.float64) for p in inst.ad_probs]
        remaining = [inst.budget(i) for i in range(h)]
        frozen = np.zeros(n, dtype=bool)  # engaged-or-seeded users
        result = CampaignResult()
        spec = self._planner_spec()
        session = (
            AllocationSession(graph, spec=spec) if self.reuse_samples else None
        )

        try:
            for window in range(self.n_windows):
                windows_left = self.n_windows - window
                planned_budgets = [
                    rem if self.budget_split == "all" else max(rem / windows_left, 1e-9)
                    for rem in remaining
                ]
                built = self._window_instance(planned_budgets, frozen, graph, probs)
                if built is None:
                    break
                sub, sub_to_original = built
                planner_seed = int(self.rng.integers(0, 2**31 - 1))
                window_spec = spec.override(seed=planner_seed)
                if session is not None:
                    plan = session.solve(
                        sub, self.algorithm, window_spec, blocked=frozen.copy()
                    )
                else:
                    plan = solve(
                        sub, self.algorithm, window_spec, blocked=frozen.copy()
                    )

                outcome = self._realize(
                    window,
                    plan.allocation.seed_sets(),
                    sub_to_original,
                    frozen,
                    remaining,
                    graph,
                    probs,
                )
                result.windows.append(outcome)
                if all(rem <= 1e-9 for rem in remaining):
                    break
                if window < len(self.edge_updates) and self.edge_updates[window]:
                    # The streaming boundary: mutate the graph before the
                    # next window plans.  Both legs remap probabilities
                    # through the same deterministic plan; the warm leg
                    # additionally repairs its RR stores incrementally.
                    batch = self.edge_updates[window]
                    update_plan = compile_updates(graph, batch)
                    if session is not None:
                        report = session.apply_edge_updates(batch)
                        graph = session.graph
                    else:
                        graph = update_plan.new_graph
                        report = {**update_plan.summary(), "mode": "cold"}
                    probs = [update_plan.apply_probs(p) for p in probs]
                    result.mutations.append(report)
        finally:
            if session is not None:
                session.close()
        return result

    # ------------------------------------------------------------------
    def _window_instance(
        self,
        budgets: list[float],
        frozen: np.ndarray,
        graph=None,
        probs=None,
    ):
        """The remaining-market instance: frozen users are priced out.

        Frozen users are excluded from seeding via the planner's
        ``blocked`` mask (an engine-level pre-assignment, which keeps the
        Eq.-10 ``c^max_i`` term meaningful); ads whose budget cannot
        cover any remaining seed are dropped from planning (budget 0 is
        invalid for RMInstance).  Returns ``(sub_instance,
        sub_to_original)`` or ``None`` when no ad can still participate.
        """
        inst = self.instance
        if graph is None:
            graph = inst.graph
        if probs is None:
            probs = inst.ad_probs
        advertisers = []
        sub_probs = []
        incentives = []
        sub_to_original: list[int] = []
        unfrozen = ~frozen
        if not unfrozen.any():
            return None
        for i in range(inst.h):
            cost = inst.incentives[i]
            affordable = float(cost[unfrozen].min()) <= budgets[i]
            if budgets[i] <= 0 or not affordable:
                continue
            advertisers.append(
                Advertiser(
                    index=len(advertisers),
                    cpe=inst.cpe(i),
                    budget=float(budgets[i]),
                    name=f"ad-{i}",
                )
            )
            sub_probs.append(probs[i])
            incentives.append(cost)
            sub_to_original.append(i)
        if not advertisers:
            return None
        sub = RMInstance(graph, advertisers, sub_probs, incentives)
        return sub, sub_to_original

    def _realize(
        self,
        window: int,
        sub_seed_sets: list[list[int]],
        sub_to_original: list[int],
        frozen: np.ndarray,
        remaining: list[float],
        graph=None,
        probs=None,
    ) -> WindowOutcome:
        """Simulate the window's cascades and settle payments."""
        inst = self.instance
        if graph is None:
            graph = inst.graph
        if probs is None:
            probs = inst.ad_probs
        h = inst.h
        seeds_per_ad: list[list[int]] = [[] for _ in range(h)]
        engagements = [0] * h
        revenue = [0.0] * h
        incentives_paid = [0.0] * h
        for sub_index, seeds in enumerate(sub_seed_sets):
            seeds_per_ad[sub_to_original[sub_index]] = list(seeds)
        for i in range(h):
            seeds = seeds_per_ad[i]
            if not seeds:
                continue
            active = simulate_cascade(graph, probs[i], seeds, self.rng)
            # Frozen users never re-engage.
            active &= ~frozen
            count = int(active.sum())
            paid_incentives = inst.seeding_cost(i, seeds)
            charge = inst.cpe(i) * count + paid_incentives
            # Settlement never exceeds the remaining pool: engagements
            # beyond budget are served free (the host absorbs them), the
            # realistic treatment of a hard cap.
            charge = min(charge, remaining[i])
            engaged_revenue = max(charge - paid_incentives, 0.0)
            remaining[i] -= charge
            engagements[i] = count
            revenue[i] = engaged_revenue
            incentives_paid[i] = min(paid_incentives, charge)
            frozen[active] = True
            for u in seeds:
                frozen[u] = True
        return WindowOutcome(
            window=window,
            seeds_per_ad=seeds_per_ad,
            realized_engagements=engagements,
            realized_revenue=revenue,
            incentives_paid=incentives_paid,
            remaining_budgets=list(remaining),
        )


def run_adaptive_campaign(
    instance: RMInstance,
    n_windows: int = 3,
    planner_kwargs: dict | None = None,
    budget_split: str = "even",
    seed=None,
    algorithm: str = "TI-CSRM",
    spec=None,
    reuse_samples: bool = False,
    edge_updates=None,
) -> CampaignResult:
    """Convenience wrapper around :class:`AdaptiveCampaign`."""
    campaign = AdaptiveCampaign(
        instance,
        n_windows=n_windows,
        planner_kwargs=planner_kwargs,
        budget_split=budget_split,
        seed=seed,
        algorithm=algorithm,
        spec=spec,
        reuse_samples=reuse_samples,
        edge_updates=edge_updates,
    )
    return campaign.run()
