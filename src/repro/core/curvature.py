"""Curvature of the RM problem's revenue and payment functions.

Observation 1 expresses the total curvature of the host's revenue over
the pair ground set ``E = V × [h]`` as

    ``κ_π = 1 − min_{(u,i)} π_i(u | V∖{u}) / π_i({u})``

and Theorem 3 consumes the payment curvatures ``κ_{ρ_i}`` plus the
extreme singleton payments ``ρ_max, ρ_min``.  This module adapts oracle-
backed spread/revenue/payment functions to the generic
:class:`~repro.submodular.functions.SetFunction` interface and computes
those quantities (exactly — so intended for reference-scale instances).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import RMInstance
from repro.core.oracles import SpreadOracle
from repro.submodular.functions import SetFunction


class SpreadSetFunction(SetFunction):
    """``σ_i`` on the node ground set, via an oracle."""

    def __init__(self, oracle: SpreadOracle, ad: int) -> None:
        super().__init__(range(oracle.instance.n))
        self.oracle = oracle
        self.ad = int(ad)

    def evaluate(self, subset: frozenset) -> float:
        return self.oracle.spread(self.ad, subset)


class RevenueSetFunction(SetFunction):
    """``π_i = cpe(i)·σ_i`` on the node ground set."""

    def __init__(self, oracle: SpreadOracle, ad: int) -> None:
        super().__init__(range(oracle.instance.n))
        self.oracle = oracle
        self.ad = int(ad)

    def evaluate(self, subset: frozenset) -> float:
        return self.oracle.revenue(self.ad, subset)


class PaymentSetFunction(SetFunction):
    """``ρ_i = π_i + c_i`` on the node ground set."""

    def __init__(self, oracle: SpreadOracle, ad: int) -> None:
        super().__init__(range(oracle.instance.n))
        self.oracle = oracle
        self.ad = int(ad)

    def evaluate(self, subset: frozenset) -> float:
        return self.oracle.payment(self.ad, subset)


def total_revenue_curvature(instance: RMInstance, oracle: SpreadOracle) -> float:
    """``κ_π`` per Observation 1 (min over all (node, ad) pairs)."""
    n = instance.n
    all_nodes = frozenset(range(n))
    worst = 1.0
    for ad in range(instance.h):
        for u in range(n):
            singleton = oracle.revenue(ad, {u})
            if singleton <= 1e-12:
                continue
            rest = all_nodes - {u}
            marginal = oracle.revenue(ad, all_nodes) - oracle.revenue(ad, rest)
            worst = min(worst, max(marginal, 0.0) / singleton)
    return float(np.clip(1.0 - worst, 0.0, 1.0))


def payment_curvature(instance: RMInstance, oracle: SpreadOracle, ad: int) -> float:
    """``κ_{ρ_i}`` — total curvature of advertiser *ad*'s payment."""
    n = instance.n
    all_nodes = frozenset(range(n))
    worst = 1.0
    for u in range(n):
        singleton = oracle.payment(ad, {u})
        if singleton <= 1e-12:
            continue
        marginal = oracle.payment(ad, all_nodes) - oracle.payment(ad, all_nodes - {u})
        worst = min(worst, max(marginal, 0.0) / singleton)
    return float(np.clip(1.0 - worst, 0.0, 1.0))


def max_payment_curvature(instance: RMInstance, oracle: SpreadOracle) -> float:
    """``max_i κ_{ρ_i}`` as consumed by Theorem 3."""
    return max(payment_curvature(instance, oracle, ad) for ad in range(instance.h))


def singleton_payment_extremes(
    instance: RMInstance, oracle: SpreadOracle
) -> tuple[float, float]:
    """``(ρ_max, ρ_min)``: extreme singleton payments over ``V × [h]``."""
    payments = [
        oracle.payment(ad, {u})
        for ad in range(instance.h)
        for u in range(instance.n)
    ]
    return float(max(payments)), float(min(payments))
