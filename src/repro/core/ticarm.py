"""TI-CARM: the scalable realization of CA-GREEDY (Section 4.2).

Candidate selection is Algorithm 4 (``SelectBestCANode``: the unassigned
node of maximum residual RR coverage) and winner selection is the
maximum marginal revenue subject to budget feasibility — the two
replacements the paper specifies relative to Algorithm 2.

This function is a thin shim over the unified API — it compiles its
keywords into an :class:`~repro.api.spec.EngineSpec` and calls
``repro.solve(instance, "TI-CARM", spec)``; results are bit-identical
to constructing the engine directly.
"""

from __future__ import annotations

from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.rrset.tim import DEFAULT_THETA_CAP


def ti_carm(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    share_samples: bool = False,
    lazy_candidates: bool = True,
    sampler_backend: str = "serial",
    workers: int | None = None,
    blocked=None,
    seed=None,
) -> AllocationResult:
    """Run TI-CARM on *instance*.

    Parameters mirror :class:`~repro.core.ti_engine.TIEngine`; see
    that class for estimator semantics.  Approximation: Theorem 2's bound
    deteriorated by the additive RR-estimation term of Theorem 4.
    """
    from repro.api.solve import legacy_solve

    return legacy_solve(
        instance,
        "TI-CARM",
        seed,
        eps=eps,
        ell=ell,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        share_samples=share_samples,
        lazy_candidates=lazy_candidates,
        sampler_backend=sampler_backend,
        workers=workers,
        blocked=blocked,
    )
