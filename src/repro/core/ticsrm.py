"""TI-CSRM: the scalable realization of CS-GREEDY (Algorithm 2).

Candidate selection is Algorithm 5 (``SelectBestCSNode``: the unassigned
node of maximum coverage-to-incentive ratio) and winner selection is the
maximum rate of marginal revenue per marginal payment, subject to budget
feasibility.

The *window* parameter implements the trade-off of Section 5 ("Revenue &
running time vs. window size"): the per-ad candidate search is restricted
to the ``w`` unassigned nodes of highest marginal revenue.  ``window=1``
collapses to TI-CARM's choice; ``window=None`` (i.e. ``w = n``) is the
full cost-sensitive rule and the most expensive.

This function is a thin shim over the unified API — it compiles its
keywords into an :class:`~repro.api.spec.EngineSpec` and calls
``repro.solve(instance, "TI-CSRM", spec)``; results are bit-identical
to constructing the engine directly.
"""

from __future__ import annotations

from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.rrset.tim import DEFAULT_THETA_CAP


def ti_csrm(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    window: int | None = None,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    share_samples: bool = False,
    lazy_candidates: bool = True,
    sampler_backend: str = "serial",
    workers: int | None = None,
    blocked=None,
    seed=None,
) -> AllocationResult:
    """Run TI-CSRM on *instance* (optionally window-restricted).

    Approximation: Theorem 3's bound deteriorated by the additive
    RR-estimation term of Theorem 4.
    """
    from repro.api.solve import legacy_solve

    return legacy_solve(
        instance,
        "TI-CSRM",
        seed,
        eps=eps,
        ell=ell,
        window=window,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        share_samples=share_samples,
        lazy_candidates=lazy_candidates,
        sampler_backend=sampler_backend,
        workers=workers,
        blocked=blocked,
    )
