"""TI-CSRM: the scalable realization of CS-GREEDY (Algorithm 2).

Candidate selection is Algorithm 5 (``SelectBestCSNode``: the unassigned
node of maximum coverage-to-incentive ratio) and winner selection is the
maximum rate of marginal revenue per marginal payment, subject to budget
feasibility.

The *window* parameter implements the trade-off of Section 5 ("Revenue &
running time vs. window size"): the per-ad candidate search is restricted
to the ``w`` unassigned nodes of highest marginal revenue.  ``window=1``
collapses to TI-CARM's choice; ``window=None`` (i.e. ``w = n``) is the
full cost-sensitive rule and the most expensive.
"""

from __future__ import annotations

from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.core.ti_engine import TIEngine
from repro.rrset.tim import DEFAULT_THETA_CAP


def ti_csrm(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    window: int | None = None,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    share_samples: bool = False,
    sampler_backend: str = "serial",
    workers: int | None = None,
    blocked=None,
    seed=None,
) -> AllocationResult:
    """Run TI-CSRM on *instance* (optionally window-restricted).

    Approximation: Theorem 3's bound deteriorated by the additive
    RR-estimation term of Theorem 4.
    """
    name = "TI-CSRM" if window is None else f"TI-CSRM({window})"
    engine = TIEngine(
        instance,
        candidate_rule="cs",
        selector="rate",
        eps=eps,
        ell=ell,
        window=window,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        sampler_backend=sampler_backend,
        workers=workers,
        share_samples=share_samples,
        blocked=blocked,
        seed=seed,
        algorithm_name=name,
    )
    return engine.run()
