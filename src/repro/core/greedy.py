"""Reference CA-GREEDY / CS-GREEDY (Algorithm 1 and its CS variant).

These are the oracle-based algorithms whose guarantees Theorems 2 and 3
establish.  Each iteration scans all live ``(node, ad)`` pairs, picks the
argmax of the selection rule, and either commits it (if the knapsack and
matroid constraints stay satisfied) or deletes it from the ground set —
exactly lines 3–13 of Algorithm 1.  Pairs whose node is already assigned
are pruned eagerly; this is output-equivalent to the pseudocode (such a
pair would be selected once, fail the matroid test, and be deleted
without any other state change) and avoids wasted oracle calls.

These implementations evaluate the oracle ``O(n·h)`` times per iteration
and are meant for reference/validation scale; use TI-CARM / TI-CSRM for
real graphs.
"""

from __future__ import annotations

import itertools
import time

from repro.core.allocation import Allocation, AllocationResult
from repro.core.instance import RMInstance
from repro.core.oracles import SpreadOracle
from repro.errors import AllocationError


def _tie_key(instance: RMInstance, tie_break: str, node: int, ad: int) -> tuple:
    """Secondary sort key; larger wins among equal primary values."""
    if tie_break == "index":
        # Prefer smaller (node, ad): negate so larger-key-wins keeps order.
        return (-node, -ad)
    if tie_break == "cost":
        # Adversarial for CA-GREEDY: prefer the costliest seed on ties
        # (exhibits the tightness instance of Theorem 2).
        return (instance.incentive(ad, node), -node, -ad)
    raise AllocationError(f"unknown tie_break {tie_break!r}; use 'index' or 'cost'")


def _greedy(
    instance: RMInstance,
    oracle: SpreadOracle,
    cost_sensitive: bool,
    tie_break: str,
) -> AllocationResult:
    start = time.perf_counter()
    h, n = instance.h, instance.n
    allocation = Allocation(h)
    seeds: list[list[int]] = [[] for _ in range(h)]
    # Live ground set of (node, ad) pairs.
    live: set[tuple[int, int]] = {
        (u, i) for u in range(n) for i in range(h)
    }
    rounds = 0
    while live:
        rounds += 1
        best_pair = None
        best_key: tuple | None = None
        # sorted() pins scan order; _tie_key ends in (-node, -ad) so the
        # argmax is already order-independent — this keeps R5 auditable.
        for (u, i) in sorted(live):
            gain = oracle.marginal_revenue(i, u, seeds[i])
            if cost_sensitive:
                pay = oracle.marginal_payment(i, u, seeds[i])
                primary = gain / pay if pay > 0 else (float("inf") if gain > 0 else 0.0)
            else:
                primary = gain
            key = (primary,) + _tie_key(instance, tie_break, u, i)
            if best_key is None or key > best_key:
                best_key = key
                best_pair = (u, i)
        assert best_pair is not None
        u, i = best_pair
        if oracle.payment(i, seeds[i] + [u]) <= instance.budget(i) + 1e-9:
            allocation.add(u, i)
            seeds[i].append(u)
            live.discard(best_pair)
            # Matroid pruning: u can seed no other ad.
            live -= {(u, j) for j in range(h)}
        else:
            live.discard(best_pair)

    revenue = [oracle.revenue(i, seeds[i]) for i in range(h)]
    seed_cost = [instance.seeding_cost(i, seeds[i]) for i in range(h)]
    return AllocationResult(
        allocation=allocation,
        revenue_per_ad=revenue,
        seeding_cost_per_ad=seed_cost,
        algorithm="CS-GREEDY" if cost_sensitive else "CA-GREEDY",
        runtime_seconds=time.perf_counter() - start,
        extras={"rounds": rounds, "tie_break": tie_break},
    )


def ca_greedy(
    instance: RMInstance,
    oracle: SpreadOracle,
    tie_break: str = "index",
) -> AllocationResult:
    """Cost-agnostic greedy: argmax of marginal revenue ``π_i(u | S_i)``.

    Guarantee (Theorem 2): ``(1/κ_π)·(1 − ((R−κ_π)/R)^r)`` of the optimum,
    where ``r, R`` are the ranks of the feasibility system and ``κ_π`` the
    total curvature of the revenue.
    """
    return _greedy(instance, oracle, cost_sensitive=False, tie_break=tie_break)


def cs_greedy(
    instance: RMInstance,
    oracle: SpreadOracle,
    tie_break: str = "index",
) -> AllocationResult:
    """Cost-sensitive greedy: argmax of ``π_i(u|S_i) / ρ_i(u|S_i)``.

    Guarantee (Theorem 3):
    ``1 − R·ρmax / (R·ρmax + (1 − max_i κ_ρi)·ρmin)`` of the optimum.
    """
    return _greedy(instance, oracle, cost_sensitive=True, tie_break=tie_break)


def exhaustive_optimum(
    instance: RMInstance,
    oracle: SpreadOracle,
    max_assignments: int = 250_000,
) -> tuple[list[list[int]], float]:
    """Brute-force optimal allocation (tiny instances only).

    Enumerates all ``(h+1)^n`` node→{ad or none} assignments, filters by
    the knapsack constraints under *oracle*, and returns the best feasible
    allocation with its revenue.  The matroid constraint holds by
    construction.
    """
    h, n = instance.h, instance.n
    total = (h + 1) ** n
    if total > max_assignments:
        raise AllocationError(
            f"{total} assignments exceed the exhaustive limit {max_assignments}"
        )
    best_sets: list[list[int]] = [[] for _ in range(h)]
    best_value = 0.0
    for assignment in itertools.product(range(h + 1), repeat=n):
        seed_sets: list[list[int]] = [[] for _ in range(h)]
        for node, slot in enumerate(assignment):
            if slot > 0:
                seed_sets[slot - 1].append(node)
        feasible = all(
            oracle.payment(i, seed_sets[i]) <= instance.budget(i) + 1e-9
            for i in range(h)
        )
        if not feasible:
            continue
        value = oracle.total_revenue(seed_sets)
        if value > best_value + 1e-12:
            best_value = value
            best_sets = seed_sets
    return best_sets, best_value
