"""PageRank-based baselines (Section 5).

Both baselines replace Algorithm 2's line 7 with the *ad-specific
PageRank ordering* — the random surfer walks arcs in the influence
direction with transition mass proportional to ``p^i_{u,v}`` — and
differ in line 9:

* **PageRank-GR** still picks, among the per-ad candidates, the
  (node, advertiser) pair of maximum marginal revenue (greedy);
* **PageRank-RR** assigns candidates to advertisers in round-robin
  order.

Budget feasibility and the revenue estimation machinery (RR collections,
θ schedules) are identical to TI-CARM/TI-CSRM, so differences in outcome
isolate the effect of the candidate rule — the comparison the paper's
quality experiments make.
"""

from __future__ import annotations

from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.core.ti_engine import TIEngine
from repro.rrset.tim import DEFAULT_THETA_CAP


def pagerank_gr(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    sampler_backend: str = "serial",
    workers: int | None = None,
    seed=None,
) -> AllocationResult:
    """PageRank candidates, greedy (max marginal revenue) assignment."""
    engine = TIEngine(
        instance,
        candidate_rule="pagerank",
        selector="revenue",
        eps=eps,
        ell=ell,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        sampler_backend=sampler_backend,
        workers=workers,
        seed=seed,
        algorithm_name="PageRank-GR",
    )
    return engine.run()


def pagerank_rr(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    sampler_backend: str = "serial",
    workers: int | None = None,
    seed=None,
) -> AllocationResult:
    """PageRank candidates, round-robin assignment over advertisers."""
    engine = TIEngine(
        instance,
        candidate_rule="pagerank",
        selector="round_robin",
        eps=eps,
        ell=ell,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        sampler_backend=sampler_backend,
        workers=workers,
        seed=seed,
        algorithm_name="PageRank-RR",
    )
    return engine.run()
