"""PageRank-based baselines (Section 5).

Both baselines replace Algorithm 2's line 7 with the *ad-specific
PageRank ordering* — the random surfer walks arcs in the influence
direction with transition mass proportional to ``p^i_{u,v}`` — and
differ in line 9:

* **PageRank-GR** still picks, among the per-ad candidates, the
  (node, advertiser) pair of maximum marginal revenue (greedy);
* **PageRank-RR** assigns candidates to advertisers in round-robin
  order.

Budget feasibility and the revenue estimation machinery (RR collections,
θ schedules) are identical to TI-CARM/TI-CSRM, so differences in outcome
isolate the effect of the candidate rule — the comparison the paper's
quality experiments make.

Both functions are thin shims over the unified API — they compile their
keywords into an :class:`~repro.api.spec.EngineSpec` and call
``repro.solve(instance, name, spec)``; results are bit-identical to
constructing the engine directly.
"""

from __future__ import annotations

from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.rrset.tim import DEFAULT_THETA_CAP


def _pagerank_baseline(
    name: str,
    instance: RMInstance,
    seed,
    blocked,
    **spec_fields,
) -> AllocationResult:
    from repro.api.solve import legacy_solve

    return legacy_solve(instance, name, seed, blocked=blocked, **spec_fields)


def pagerank_gr(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    share_samples: bool = False,
    sampler_backend: str = "serial",
    workers: int | None = None,
    blocked=None,
    seed=None,
) -> AllocationResult:
    """PageRank candidates, greedy (max marginal revenue) assignment."""
    return _pagerank_baseline(
        "PageRank-GR",
        instance,
        seed,
        blocked,
        eps=eps,
        ell=ell,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        share_samples=share_samples,
        sampler_backend=sampler_backend,
        workers=workers,
    )


def pagerank_rr(
    instance: RMInstance,
    *,
    eps: float = 0.1,
    ell: float = 1.0,
    theta_cap: int | None = DEFAULT_THETA_CAP,
    opt_lower="kpt",
    kpt_max_samples: int = 5_000,
    share_samples: bool = False,
    sampler_backend: str = "serial",
    workers: int | None = None,
    blocked=None,
    seed=None,
) -> AllocationResult:
    """PageRank candidates, round-robin assignment over advertisers."""
    return _pagerank_baseline(
        "PageRank-RR",
        instance,
        seed,
        blocked,
        eps=eps,
        ell=ell,
        theta_cap=theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=kpt_max_samples,
        share_samples=share_samples,
        sampler_backend=sampler_backend,
        workers=workers,
    )
