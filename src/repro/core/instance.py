"""The RM problem instance (Problem 1).

An instance bundles the social graph, the ``h`` advertisers, the
ad-specific arc probabilities ``p^i_{u,v}`` (already mixed via Eq. 1),
and the per-ad incentive vectors ``c_i(u)``.  Validation enforces the
paper's non-degeneracy assumption — every advertiser can afford at least
one seed — in its weakest sufficient form (some node's incentive fits the
budget; the engagement part of the payment is estimator-dependent and is
enforced by the algorithms' feasibility checks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InstanceError
from repro.graph.digraph import DiGraph
from repro.core.ads import Advertiser


class RMInstance:
    """Inputs of REVENUE-MAXIMIZATION (Problem 1)."""

    __slots__ = ("graph", "advertisers", "ad_probs", "incentives")

    def __init__(
        self,
        graph: DiGraph,
        advertisers: Sequence[Advertiser],
        ad_probs: Sequence[np.ndarray],
        incentives: Sequence[np.ndarray],
    ) -> None:
        if not advertisers:
            raise InstanceError("an RM instance needs at least one advertiser")
        if len(ad_probs) != len(advertisers) or len(incentives) != len(advertisers):
            raise InstanceError(
                "ad_probs and incentives must have one entry per advertiser"
            )
        for pos, adv in enumerate(advertisers):
            if adv.index != pos:
                raise InstanceError(
                    f"advertiser at position {pos} has index {adv.index}; "
                    "indices must equal positions"
                )
        checked_probs: list[np.ndarray] = []
        checked_incentives: list[np.ndarray] = []
        for i, (probs, costs) in enumerate(zip(ad_probs, incentives)):
            probs = np.asarray(probs, dtype=np.float64)
            costs = np.asarray(costs, dtype=np.float64)
            if probs.shape != (graph.m,):
                raise InstanceError(
                    f"ad {i}: probabilities must have shape ({graph.m},), got {probs.shape}"
                )
            if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
                raise InstanceError(f"ad {i}: probabilities must lie in [0, 1]")
            if costs.shape != (graph.n,):
                raise InstanceError(
                    f"ad {i}: incentives must have shape ({graph.n},), got {costs.shape}"
                )
            if costs.size and costs.min() < 0.0:
                raise InstanceError(f"ad {i}: incentives must be non-negative")
            if costs.size and costs.min() > advertisers[i].budget:
                raise InstanceError(
                    f"ad {i}: no node's incentive fits the budget "
                    f"({costs.min():.3f} > {advertisers[i].budget:.3f}); "
                    "degenerate instances are excluded (Section 2)"
                )
            checked_probs.append(probs)
            checked_incentives.append(costs)
        self.graph = graph
        self.advertisers = list(advertisers)
        self.ad_probs = checked_probs
        self.incentives = checked_incentives

    # ------------------------------------------------------------------
    @property
    def h(self) -> int:
        """Number of advertisers."""
        return len(self.advertisers)

    @property
    def n(self) -> int:
        """Number of nodes in the social graph."""
        return self.graph.n

    def cpe(self, i: int) -> float:
        """Cost-per-engagement of advertiser *i*."""
        return self.advertisers[i].cpe

    def budget(self, i: int) -> float:
        """Campaign budget of advertiser *i*."""
        return self.advertisers[i].budget

    def incentive(self, i: int, u: int) -> float:
        """Seed incentive ``c_i(u)``."""
        return float(self.incentives[i][u])

    def seeding_cost(self, i: int, seeds) -> float:
        """``c_i(S) = Σ_{u∈S} c_i(u)`` (modular)."""
        seeds = list(seeds)
        if not seeds:
            return 0.0
        return float(self.incentives[i][np.asarray(seeds, dtype=np.int64)].sum())

    def max_incentive(self, i: int) -> float:
        """``c^max_i`` — used by the latent seed-size estimate (Eq. 10)."""
        return float(self.incentives[i].max()) if self.graph.n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RMInstance(n={self.n}, m={self.graph.m}, h={self.h})"
