"""The paper's primary contribution: the RM problem and its algorithms."""

from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.core.allocation import Allocation, AllocationResult
from repro.core.independence import (
    PartitionMatroid,
    allocation_pairs_independent,
    maximal_independent_sets,
    lower_upper_rank,
)
from repro.core.oracles import (
    SpreadOracle,
    ExactOracle,
    MonteCarloOracle,
    RRStaticOracle,
)
from repro.core.greedy import ca_greedy, cs_greedy, exhaustive_optimum
from repro.core.seedsize import next_seed_size
from repro.core.ti_engine import TIEngine
from repro.core.ticarm import ti_carm
from repro.core.ticsrm import ti_csrm
from repro.core.baselines import pagerank_gr, pagerank_rr
from repro.core.adaptive import AdaptiveCampaign, CampaignResult, WindowOutcome, run_adaptive_campaign
from repro.core.curvature import (
    SpreadSetFunction,
    RevenueSetFunction,
    PaymentSetFunction,
    total_revenue_curvature,
    payment_curvature,
    singleton_payment_extremes,
)
from repro.core.bounds import (
    fnw_matroid_floor,
    theorem2_bound,
    theorem2_counterexample,
    theorem2_exponential_bound,
    theorem3_bound,
    theorem4_additive_deterioration,
    tightness_instance,
)

__all__ = [
    "Advertiser",
    "RMInstance",
    "Allocation",
    "AllocationResult",
    "PartitionMatroid",
    "allocation_pairs_independent",
    "maximal_independent_sets",
    "lower_upper_rank",
    "SpreadOracle",
    "ExactOracle",
    "MonteCarloOracle",
    "RRStaticOracle",
    "ca_greedy",
    "cs_greedy",
    "exhaustive_optimum",
    "next_seed_size",
    "TIEngine",
    "ti_carm",
    "ti_csrm",
    "pagerank_gr",
    "pagerank_rr",
    "AdaptiveCampaign",
    "CampaignResult",
    "WindowOutcome",
    "run_adaptive_campaign",
    "SpreadSetFunction",
    "RevenueSetFunction",
    "PaymentSetFunction",
    "total_revenue_curvature",
    "payment_curvature",
    "singleton_payment_extremes",
    "fnw_matroid_floor",
    "theorem2_bound",
    "theorem2_counterexample",
    "theorem2_exponential_bound",
    "theorem3_bound",
    "theorem4_additive_deterioration",
    "tightness_instance",
]
