"""Allocations: the decision variable of the RM problem.

An allocation ``S⃗ = (S_1, …, S_h)`` assigns pairwise-disjoint seed sets
to the ``h`` advertisers.  :class:`Allocation` enforces disjointness on
insertion (the partition-matroid constraint is thereby an invariant, not
an afterthought) and remembers insertion order, which the greedy-trace
tests rely on.  :class:`AllocationResult` attaches the estimated
revenues/payments and run diagnostics that the experiment harness
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError


class Allocation:
    """Pairwise-disjoint seed sets for ``h`` advertisers."""

    __slots__ = ("h", "_seed_lists", "_owner")

    def __init__(self, h: int) -> None:
        if h < 1:
            raise AllocationError(f"h must be >= 1, got {h}")
        self.h = int(h)
        self._seed_lists: list[list[int]] = [[] for _ in range(h)]
        self._owner: dict[int, int] = {}

    def add(self, node: int, ad: int) -> None:
        """Assign *node* as a seed of *ad*; rejects double assignment."""
        node = int(node)
        if not 0 <= ad < self.h:
            raise AllocationError(f"ad index {ad} out of range [0, {self.h})")
        if node in self._owner:
            raise AllocationError(
                f"node {node} already seeds ad {self._owner[node]}; "
                "seed sets must be pairwise disjoint"
            )
        self._owner[node] = int(ad)
        self._seed_lists[ad].append(node)

    def is_assigned(self, node: int) -> bool:
        """Whether *node* already seeds some ad."""
        return int(node) in self._owner

    def owner_of(self, node: int) -> int | None:
        """The ad *node* seeds, or ``None``."""
        return self._owner.get(int(node))

    def seeds(self, ad: int) -> list[int]:
        """Seed list of *ad* in insertion order."""
        if not 0 <= ad < self.h:
            raise AllocationError(f"ad index {ad} out of range [0, {self.h})")
        return list(self._seed_lists[ad])

    def seed_sets(self) -> list[list[int]]:
        """All seed lists, indexed by ad."""
        return [list(s) for s in self._seed_lists]

    def pairs(self) -> list[tuple[int, int]]:
        """The allocation as ``(node, ad)`` ground-set pairs."""
        return [(node, ad) for ad, seeds in enumerate(self._seed_lists) for node in seeds]

    @property
    def total_seeds(self) -> int:
        """Total number of assigned (node, ad) pairs."""
        return len(self._owner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(len(s)) for s in self._seed_lists)
        return f"Allocation(h={self.h}, sizes=[{sizes}])"


@dataclass
class AllocationResult:
    """An allocation plus the estimates and diagnostics behind it.

    ``revenue_per_ad[i]`` is ``π̂_i(S_i)`` under the estimator the
    algorithm ran with; ``payment_per_ad[i] = π̂_i + c_i(S_i)`` is the
    advertiser's estimated total payment ``ρ̂_i``.
    """

    allocation: Allocation
    revenue_per_ad: list[float]
    seeding_cost_per_ad: list[float]
    algorithm: str = ""
    runtime_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def payment_per_ad(self) -> list[float]:
        """``ρ̂_i = π̂_i + c_i(S_i)`` per advertiser."""
        return [r + c for r, c in zip(self.revenue_per_ad, self.seeding_cost_per_ad)]

    @property
    def total_revenue(self) -> float:
        """Host revenue ``π̂(S⃗) = Σ_i π̂_i(S_i)``."""
        return float(sum(self.revenue_per_ad))

    @property
    def total_seeding_cost(self) -> float:
        """Total incentives paid out to seeds, ``Σ_i c_i(S_i)``."""
        return float(sum(self.seeding_cost_per_ad))

    @property
    def total_seeds(self) -> int:
        """Total number of seed (node, ad) assignments."""
        return self.allocation.total_seeds

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.algorithm or 'result'}: revenue={self.total_revenue:.1f} "
            f"seed_cost={self.total_seeding_cost:.1f} seeds={self.total_seeds} "
            f"time={self.runtime_seconds:.2f}s"
        )
