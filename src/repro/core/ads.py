"""Advertiser metadata.

Each advertiser brings one ad per time window (the paper uses *i* for
both), described by a topic distribution ``γ⃗_i``, a cost-per-engagement
``cpe(i)`` the host earns for every click, and a campaign budget ``B_i``
capping the advertiser's total payment ``ρ_i(S_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InstanceError
from repro.topics.distribution import TopicDistribution


@dataclass(frozen=True)
class Advertiser:
    """One advertiser / ad in the marketplace."""

    index: int
    cpe: float
    budget: float
    distribution: TopicDistribution | None = None
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InstanceError(f"advertiser index must be >= 0, got {self.index}")
        if self.cpe <= 0:
            raise InstanceError(f"cpe must be positive, got {self.cpe}")
        if self.budget <= 0:
            raise InstanceError(f"budget must be positive, got {self.budget}")
        if not self.name:
            object.__setattr__(self, "name", f"ad-{self.index}")

    def engagements_affordable(self) -> float:
        """``B_i / cpe(i)``: engagement count the budget could buy with free seeds.

        ``R ≤ min(n, Σ_i ⌊B_i/cpe(i)⌋)`` uses this quantity (Section 3.1).
        """
        return self.budget / self.cpe
