"""Approximation-bound calculators and the Figure 1 tightness instance.

Implements the closed forms of Theorems 2–4 plus the discussion
inequalities of Section 3.1 (the ``exp`` relaxation and the ``1/R``
worst-case floor), and reconstructs the instance of Figure 1 on which
Theorem 2's bound is tight (CA-GREEDY can end at exactly half the
optimum) while CS-GREEDY finds the optimum (footnote 9).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InstanceError
from repro.graph.digraph import DiGraph
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance


def theorem2_bound(kappa: float, r: int, R: int) -> float:
    """CA-GREEDY guarantee ``(1/κ)·(1 − ((R−κ)/R)^r)``.

    The κ → 0 limit is ``r/R`` (the bound of modular objectives);
    evaluated via the exact limit to stay numerically stable.
    """
    if not 0.0 <= kappa <= 1.0:
        raise InstanceError(f"curvature must be in [0, 1], got {kappa}")
    if r < 0 or R < max(r, 1):
        raise InstanceError(f"ranks must satisfy 0 <= r <= R with R >= 1, got r={r}, R={R}")
    if r == 0:
        return 0.0
    if kappa < 1e-12:
        return r / R
    return (1.0 / kappa) * (1.0 - ((R - kappa) / R) ** r)


def theorem2_exponential_bound(kappa: float, r: int, R: int) -> float:
    """The relaxation ``(1/κ)(1 − e^{−κ·r/R})`` ≤ Theorem 2's bound."""
    if not 0.0 <= kappa <= 1.0:
        raise InstanceError(f"curvature must be in [0, 1], got {kappa}")
    if r == 0:
        return 0.0
    if kappa < 1e-12:
        return r / R
    return (1.0 / kappa) * (1.0 - math.exp(-kappa * r / R))


def fnw_matroid_floor(kappa: float) -> float:
    """The classical greedy floor ``1/(1 + κ)`` for *matroid* constraints
    (Conforti & Cornuéjols / Fisher–Nemhauser–Wolsey).

    Valid only when the feasible family is a matroid; the RM problem's
    knapsack constraints break it (a cost-agnostic greedy can burn the
    budget on one expensive seed — exactly the gap Theorem 2's ``r/R``
    ratio accounts for).
    """
    if not 0.0 <= kappa <= 1.0:
        raise InstanceError(f"curvature must be in [0, 1], got {kappa}")
    return 1.0 / (1.0 + kappa)


def worst_case_floor(R: int) -> float:
    """``1/R``: the instance-independent floor of Theorem 2 (Eq. 3)."""
    if R < 1:
        raise InstanceError(f"R must be >= 1, got {R}")
    return 1.0 / R


def theorem3_bound(kappa_rho_max: float, R: int, rho_max: float, rho_min: float) -> float:
    """CS-GREEDY guarantee of Theorem 3.

    ``1 − R·ρmax / (R·ρmax + (1 − max_i κ_ρi)·ρmin)``; degenerates to 0
    when ``max_i κ_ρi = 1`` (the unbounded case discussed in the paper).
    """
    if not 0.0 <= kappa_rho_max <= 1.0:
        raise InstanceError(f"curvature must be in [0, 1], got {kappa_rho_max}")
    if R < 1:
        raise InstanceError(f"R must be >= 1, got {R}")
    if rho_max < rho_min or rho_min < 0:
        raise InstanceError(
            f"need 0 <= rho_min <= rho_max, got rho_min={rho_min}, rho_max={rho_max}"
        )
    denominator = R * rho_max + (1.0 - kappa_rho_max) * rho_min
    if denominator <= 0:
        return 0.0
    return 1.0 - (R * rho_max) / denominator


def theorem4_additive_deterioration(eps: float, cpes, opt_per_ad) -> float:
    """The additive loss ``Σ_i cpe(i)·ε·OPT_{s_i}`` of Theorem 4."""
    if eps <= 0:
        raise InstanceError(f"eps must be positive, got {eps}")
    cpes = np.asarray(cpes, dtype=np.float64)
    opts = np.asarray(opt_per_ad, dtype=np.float64)
    if cpes.shape != opts.shape:
        raise InstanceError("cpes and opt_per_ad must have matching shapes")
    return float(eps * (cpes * opts).sum())


def theorem2_counterexample() -> tuple[RMInstance, dict]:
    """A 3-node instance on which the literal Theorem-2 formula is exceeded.

    **Reproduction finding.**  Take arcs ``0 ↔ 1`` (probability 1), an
    isolated node 2, incentives ``(2.0, 0.1, 0.1)``, ``cpe = 1`` and
    budget 5.  The feasible family is a rank-2 matroid (independents:
    ∅, {0}, {1}, {2}, {0,1}, {1,2}), the revenue curvature is ``κ_π = 1``
    and Definition-5 ranks are ``r = R = 2``, so Theorem 2's formula
    evaluates to ``1 − (1/2)² = 3/4``.  Yet CA-GREEDY deterministically
    seeds node 0 first (marginal revenue 2, and node 0 wins any natural
    tie-break against node 1's identical marginal), after which
    ``{0, 2}`` violates the budget and the run ends at ``{0, 1}`` with
    revenue 2 — only **2/3** of the optimum ``{1, 2}`` (revenue 3).

    The closed form of Theorem 2 descends from the *uniform-matroid*
    (cardinality) greedy analysis; this instance shows it is not a
    universal worst-case bound for general independence systems read
    with Definition-5 ranks.  On our exhaustive 3–4-node enumeration
    (~235K instances) every violation was of this twin-tie matroid kind
    and the ratio never fell below ``1/(R + 1)``, which is the floor the
    property suite asserts.
    """
    graph = DiGraph.from_edge_list([(0, 1), (1, 0)], n=3)
    probs = np.ones(graph.m, dtype=np.float64)
    incentives = np.array([2.0, 0.1, 0.1])
    advertiser = Advertiser(index=0, cpe=1.0, budget=5.0)
    instance = RMInstance(graph, [advertiser], [probs], [incentives])
    expected = {
        "optimal_revenue": 3.0,
        "optimal_seeds": {1, 2},
        "greedy_revenue": 2.0,
        "greedy_seeds": {0, 1},
        "kappa_pi": 1.0,
        "lower_rank": 2,
        "upper_rank": 2,
        "theorem2_formula_value": 0.75,
        "observed_ratio": 2.0 / 3.0,
    }
    return instance, expected


# ----------------------------------------------------------------------
# Figure 1: the tightness instance of Theorem 2
# ----------------------------------------------------------------------
TIGHTNESS_NODE_NAMES = ("a", "b", "c", "d", "e", "f", "g")


def tightness_instance() -> tuple[RMInstance, dict]:
    """Reconstruct the Figure 1 instance (one advertiser, B = 7, cpe = 1).

    Layout (all arc probabilities 1):

    * ``a → d, e`` and ``c → f, g`` — two cheap influencers (cost 0.5)
      with disjoint audiences, the optimal pair;
    * ``b → d, f`` — an expensive influencer (cost 4) whose audience
      overlaps both, the greedy trap;
    * leaves ``d, e, f, g`` cost 3 each.

    Every singleton spread among {a, b, c} is 3, so the cost-agnostic
    greedy may tie-break onto ``b``; then ``ρ({b}) = 3 + 4 = 7`` exhausts
    the budget and no further pair is feasible — revenue 3, versus the
    optimum ``{a, c}`` with revenue 6.  With ``r = 1``, ``R = 2`` and
    ``κ_π = 1`` Theorem 2's bound evaluates to exactly ½: tight.
    CS-GREEDY's rate rule picks ``a`` then ``c`` and is optimal
    (footnote 9).

    Returns ``(instance, expected)`` where *expected* records the values
    the tests assert.
    """
    a, b, c, d, e, f, g = range(7)
    edges = [(a, d), (a, e), (b, d), (b, f), (c, f), (c, g)]
    graph = DiGraph.from_edge_list(edges, n=7)
    probs = np.ones(graph.m, dtype=np.float64)
    incentives = np.array([0.5, 4.0, 0.5, 3.0, 3.0, 3.0, 3.0])
    advertiser = Advertiser(index=0, cpe=1.0, budget=7.0)
    instance = RMInstance(graph, [advertiser], [probs], [incentives])
    expected = {
        "optimal_revenue": 6.0,
        "optimal_seeds": {a, c},
        "adversarial_greedy_revenue": 3.0,
        "adversarial_greedy_seeds": {b},
        "lower_rank": 1,
        "upper_rank": 2,
        "kappa_pi": 1.0,
        "theorem2_bound": 0.5,
    }
    return instance, expected
