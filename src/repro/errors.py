"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for malformed graph construction or invalid node/edge ids."""


class GraphUpdateError(GraphError):
    """Raised for invalid edge-update batches: unknown ops, updates that
    target a missing edge (delete/set_prob), insertions of an edge that
    already exists, conflicting updates to one edge inside a batch, or
    endpoints/probabilities outside their domain."""


class TopicModelError(ReproError):
    """Raised for invalid topic distributions or probability tensors."""


class InstanceError(ReproError):
    """Raised for inconsistent RM problem instances.

    Examples include budgets that cannot afford a single seed (degenerate
    instances ruled out in Section 2 of the paper), mismatched advertiser
    metadata, or incentive vectors of the wrong length.
    """


class AllocationError(ReproError):
    """Raised when an allocation violates the problem's constraints."""


class SpecError(ReproError):
    """Raised for invalid scenario-grid specs or mismatched run manifests."""


class EstimationError(ReproError):
    """Raised when a spread estimator is asked for an impossible quantity."""


class ConvergenceError(ReproError):
    """Raised when an iterative routine fails to converge."""


class WorkerCrashError(EstimationError):
    """Raised when a sampler worker process (or its shared-memory
    infrastructure) fails: a crashed/hung worker, or a shared-memory
    segment that cannot be created or attached.

    Subclasses :class:`EstimationError` so existing backend error
    handling keeps working; the supervision layer in
    :mod:`repro.rrset.backend` normally recovers from it (bounded
    respawn) before callers ever see it.
    """


class PoolDegradedError(EstimationError):
    """Raised by a :class:`~repro.rrset.backend.SharedGraphPool` that has
    exhausted its respawn budget and shut itself down.

    :class:`~repro.rrset.backend.ParallelBackend` catches this and
    degrades to in-process execution of the same shard plan (bit-identical
    output per ``(seed, workers)``), recording the degradation in its
    fault counters.
    """


class CellTimeoutError(ReproError):
    """Raised when a grid cell exceeds its per-cell wall-clock timeout."""


class FaultInjectedError(ReproError):
    """Raised by :mod:`repro.faults` at a ``cell.raise`` seam — a
    deterministic, injected failure for chaos tests."""


class ServeError(ReproError):
    """Raised by the :mod:`repro.serve` layer: malformed queries, client
    transport failures, and daemon misconfiguration.

    Server-side, a :class:`ServeError` maps to an HTTP 4xx (the query is
    at fault); unexpected solve failures map to 5xx without being
    wrapped, so their class names survive into the error payload.
    """
