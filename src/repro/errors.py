"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for malformed graph construction or invalid node/edge ids."""


class TopicModelError(ReproError):
    """Raised for invalid topic distributions or probability tensors."""


class InstanceError(ReproError):
    """Raised for inconsistent RM problem instances.

    Examples include budgets that cannot afford a single seed (degenerate
    instances ruled out in Section 2 of the paper), mismatched advertiser
    metadata, or incentive vectors of the wrong length.
    """


class AllocationError(ReproError):
    """Raised when an allocation violates the problem's constraints."""


class SpecError(ReproError):
    """Raised for invalid scenario-grid specs or mismatched run manifests."""


class EstimationError(ReproError):
    """Raised when a spread estimator is asked for an impossible quantity."""


class ConvergenceError(ReproError):
    """Raised when an iterative routine fails to converge."""
