"""Thin stdlib client for a running ``repro serve`` daemon.

Three call shapes, all blocking and all over plain HTTP/JSON:

* :func:`query` — build a :class:`~repro.serve.schema.QueryRequest`
  from keyword axes, POST it to ``/solve``, return the decoded result
  payload (raising :class:`~repro.errors.ServeError` on any non-200).
* :func:`stats` / :func:`healthz` — the observability endpoints.
* :func:`request` — the raw primitive under all of the above: one
  ``(method, path, body)`` exchange returning ``(status, payload)``
  without interpreting the status, for callers (tests, the CLI's
  ``--stats`` mode) that want rejections as data rather than
  exceptions.

Connections are per-call (open, exchange, close): the daemon's
concurrency story lives in its admission queue, so client-side
keep-alive would buy latency only to complicate error handling.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException

from repro.errors import ServeError

#: Generous default: a cold first query samples RR sets from scratch.
DEFAULT_TIMEOUT_S = 300.0


def _split_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; tolerates an ``http://`` prefix."""
    addr = addr.strip()
    for prefix in ("http://", "https://"):
        if addr.startswith(prefix):
            addr = addr[len(prefix) :]
    addr = addr.rstrip("/")
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ServeError(f"address must look like 'host:port', got {addr!r}")
    return host or "127.0.0.1", int(port)


def request(
    addr: str,
    path: str,
    body: dict | None = None,
    *,
    method: str | None = None,
    timeout: float = DEFAULT_TIMEOUT_S,
) -> tuple[int, dict]:
    """One HTTP exchange with the daemon; ``(status, decoded payload)``.

    *method* defaults to ``POST`` when *body* is given, else ``GET``.
    Transport-level failures (refused connection, timeout, non-JSON
    reply) raise :class:`ServeError`; HTTP-level rejections (429, 503,
    …) are returned as data — admission outcomes are part of the
    service's interface, not client errors.
    """
    host, port = _split_addr(addr)
    method = method or ("POST" if body is not None else "GET")
    payload = None if body is None else json.dumps(body).encode("utf-8")
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"non-JSON response from {addr}{path} "
                f"(status {response.status}): {raw[:200]!r}"
            ) from exc
        return response.status, decoded
    except (OSError, HTTPException) as exc:
        raise ServeError(f"cannot reach repro-serve at {addr}: {exc}") from exc
    finally:
        conn.close()


def query(addr: str, *, timeout: float = DEFAULT_TIMEOUT_S, **axes) -> dict:
    """Solve one allocation query against the daemon at *addr*.

    *axes* are :class:`~repro.serve.schema.QueryRequest` fields
    (``dataset`` is required; ``algorithm``, ``budget``, ``h``, ``cpe``,
    ``incentive_model``, ``alpha``, ``window``, ``seed`` optional).
    Returns the result payload on 200; raises :class:`ServeError`
    carrying the server's error type and message otherwise.
    """
    from repro.serve.schema import QueryRequest

    body = QueryRequest.from_dict(dict(axes)).to_dict()  # fail fast, client-side
    status, payload = request(addr, "/solve", body, timeout=timeout)
    if status != 200:
        raise ServeError(
            f"query rejected ({status} {payload.get('error_type', '?')}): "
            f"{payload.get('error', payload)}"
        )
    return payload


def stats(addr: str, *, timeout: float = DEFAULT_TIMEOUT_S) -> dict:
    """The daemon's ``/stats`` payload (serve counters + pool/session stats)."""
    status, payload = request(addr, "/stats", timeout=timeout)
    if status != 200:
        raise ServeError(f"/stats failed ({status}): {payload}")
    return payload


def healthz(addr: str, *, timeout: float = DEFAULT_TIMEOUT_S) -> dict:
    """The daemon's ``/healthz`` payload (liveness + admission posture)."""
    status, payload = request(addr, "/healthz", timeout=timeout)
    if status != 200:
        raise ServeError(f"/healthz failed ({status}): {payload}")
    return payload
