"""``repro.serve`` — allocation-as-a-service over a warm session pool.

The batch layers (``repro.solve``, the grid runner) pay full sampling
cost per invocation or per sweep; this package turns the same engine
into a long-running daemon that keeps
:class:`~repro.api.session.AllocationSession` objects warm *across*
requests, so repeated queries over the same ``(dataset, probability
family)`` reuse RR sets, KPT estimates and worker pools they already
paid for.  See docs/ARCHITECTURE.md §13 for the design contracts
(pool keying, admission/backpressure, LRU eviction, drain).

Layout:

* :mod:`repro.serve.schema` — :class:`QueryRequest` validation and the
  JSON request/response shapes.
* :mod:`repro.serve.pool` — :class:`SessionPool`, the LRU warm-session
  pool under a global byte budget.
* :mod:`repro.serve.server` — :class:`ReproServer` /
  :class:`ServeConfig`, the HTTP frontend + single solver loop.
* :mod:`repro.serve.client` — the thin stdlib client the ``repro
  query`` CLI wraps.
"""

from repro.serve.schema import QueryRequest, error_payload, pool_key, result_payload
from repro.serve.pool import PoolEntry, SessionPool
from repro.serve.server import ReproServer, ServeConfig
from repro.serve import client

__all__ = [
    "QueryRequest",
    "pool_key",
    "result_payload",
    "error_payload",
    "PoolEntry",
    "SessionPool",
    "ReproServer",
    "ServeConfig",
    "client",
]
