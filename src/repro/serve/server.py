"""``repro serve`` — the allocation-as-a-service daemon.

A :class:`ReproServer` is two cooperating halves over one
:class:`~repro.serve.pool.SessionPool`:

* an **HTTP frontend** (stdlib :class:`~http.server.ThreadingHTTPServer`
  on a background thread) that does *admission only*: it parses and
  validates each ``POST /solve`` body, rejects while draining (503),
  applies backpressure when the bounded query queue is full (429 — the
  client's cue to retry elsewhere or later), enqueues, and parks the
  connection until the answer is ready.  ``GET /healthz`` and
  ``GET /stats`` are answered directly from counters;
* a **single solver loop** (:meth:`run`, on the caller's thread — the
  process main thread under the CLI) that pops queries in arrival
  order, leases the warm session for each query's
  ``(dataset, probs family)`` pool key, solves through it, and enforces
  the global byte budget by LRU-evicting whole sessions after every
  solve.  One solver is not an implementation shortcut: sessions are
  one-solve-at-a-time objects (live RR stores, persisted RNG streams),
  so compatible queries *must* serialize onto their shared session —
  the queue is that serialization point, and cross-family parallelism
  belongs to the per-session worker pools, not to concurrent solver
  threads.

**Determinism.**  A query's result depends only on
``(dataset entry, query axes, effective seed, daemon config)`` — never
on queue order, pool state, or which sessions were evicted — because a
warm solve adopts the same RR sets a cold share-samples solve would
draw (docs/ARCHITECTURE.md §9).  The effective seed is echoed in every
response, so any served allocation can be reproduced offline with
``repro.solve``.

**Timeouts.**  Each query runs under the PR 6 cell-deadline machinery
(:func:`repro.experiments.grid._cell_deadline`, SIGALRM-based, active
when the solver loop owns the main thread); queries that already
overstayed ``query_timeout_s`` waiting in the queue are answered 504
without solving at all.  A timed-out or failed query's session is
discarded, never reused (the quarantine rule).

**Drain.**  ``SIGTERM``/``SIGINT`` (or :meth:`begin_drain`) flips the
server to draining: new queries get 503, queued queries finish, then
the HTTP server closes and every pooled session is closed through its
normal lifecycle — no orphaned ``SharedGraphPool`` shared-memory
segments, which is the whole point of owning shutdown instead of
letting the process die mid-solve.

Fault seams (:mod:`repro.faults`): ``serve.reject`` forces admission
rejections, ``serve.delay`` stalls the solver loop — both deterministic
and test-only, like every other seam.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import faults as _faults
from repro.errors import CellTimeoutError, ServeError
from repro.experiments.config import ExperimentConfig
from repro.serve.pool import SessionPool
from repro.serve.schema import QueryRequest, error_payload, result_payload

#: Default bound on queued-but-unsolved queries (backpressure threshold).
DEFAULT_QUEUE_SIZE = 16


@dataclass(frozen=True)
class ServeConfig:
    """Startup configuration of one :class:`ReproServer`.

    ``config`` fixes the engine side (accuracy, backend, workers,
    kernel, per-store byte budget) for every session the daemon opens;
    queries cannot override it — see :mod:`repro.serve.schema`.
    ``bytes_budget`` is the *global* cap over all pooled sessions'
    measured store bytes (the CLI's ``--serve-bytes-budget``), distinct
    from the per-store ``rr_bytes_budget`` spill threshold.
    ``max_queries``, when set, drains the server after that many
    processed queries — the deterministic shutdown hook CI smoke tests
    and benchmarks use.
    """

    host: str = "127.0.0.1"
    port: int = 0
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    bytes_budget: int | None = None
    max_sessions: int | None = None
    queue_size: int = DEFAULT_QUEUE_SIZE
    query_timeout_s: float | None = None
    max_queries: int | None = None

    def __post_init__(self) -> None:
        if self.queue_size < 1:
            raise ServeError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.query_timeout_s is not None and self.query_timeout_s <= 0:
            raise ServeError(
                f"query_timeout_s must be positive, got {self.query_timeout_s}"
            )
        if self.max_queries is not None and self.max_queries < 1:
            raise ServeError(f"max_queries must be >= 1, got {self.max_queries}")


class _Job:
    """One admitted query parked between the frontend and the solver."""

    __slots__ = ("request", "enqueued", "done", "status", "payload")

    def __init__(self, request: QueryRequest) -> None:
        self.request = request
        self.enqueued = time.monotonic()
        self.done = threading.Event()
        self.status = 500
        self.payload: dict = error_payload("Internal", "job never answered")

    def respond(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        self.done.set()


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim: route, parse, delegate to the bound server."""

    #: Injected per-server via a dynamic subclass (see ReproServer).
    repro_server: "ReproServer" = None  # type: ignore[assignment]
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging goes through /stats counters, not stderr

    def _write(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away; nothing to clean up

    def do_GET(self) -> None:
        server = self.repro_server
        if self.path == "/healthz":
            self._write(200, server.health_payload())
        elif self.path == "/stats":
            self._write(200, server.stats_payload())
        else:
            self._write(404, error_payload("NotFound", f"no route {self.path!r}"))

    def do_POST(self) -> None:
        if self.path != "/solve":
            self._write(404, error_payload("NotFound", f"no route {self.path!r}"))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            data = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._write(400, error_payload("BadRequest", f"invalid JSON body: {exc}"))
            return
        status, payload = self.repro_server.submit(data)
        self._write(status, payload)


class ReproServer:
    """The serving daemon (see the module docstring for the contract)."""

    def __init__(self, serve_config: ServeConfig | None = None) -> None:
        self.config = serve_config or ServeConfig()
        self.pool = SessionPool(
            self.config.config,
            bytes_budget=self.config.bytes_budget,
            max_sessions=self.config.max_sessions,
        )
        self._queue: "queue.Queue[_Job]" = queue.Queue(maxsize=self.config.queue_size)
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._shutdown_done = False
        self._processed = 0
        self._counter_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self.counters = {
            "queries_served": 0,
            "admission_rejects": 0,
            "draining_rejects": 0,
            "solve_errors": 0,
            "query_timeouts": 0,
        }
        # One handler subclass per server so concurrent servers (tests)
        # never share mutable class state.
        handler = type("_BoundHandler", (_RequestHandler,), {"repro_server": self})
        self._http = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._http.daemon_threads = True
        self._http_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Addresses / lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """``host:port`` actually bound (port 0 resolves at construction)."""
        host, port = self._http.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> None:
        """Start the HTTP frontend on a background thread (admission only)."""
        if self._http_thread is not None:
            return
        self._http_thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()

    def serve_forever(self) -> None:
        """Start the frontend, then run the solver loop on this thread.

        This is what the CLI calls from the process main thread — which
        is exactly what arms the SIGALRM-based per-query deadline.
        Returns after a drain completes.
        """
        self.start()
        self.run()

    def install_signal_handlers(self) -> None:
        """Route ``SIGTERM``/``SIGINT`` to :meth:`begin_drain` (CLI path).

        Must run on the main thread (stdlib signal contract); the
        handlers only flip the drain flag, so an in-flight query always
        finishes before the process exits.
        """
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.begin_drain())

    def begin_drain(self) -> None:
        """Stop admitting; the solver loop exits once the queue empties."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested."""
        return self._draining.is_set()

    @property
    def drained(self) -> bool:
        """Whether the solver loop has fully exited (shutdown complete)."""
        return self._drained.is_set()

    # ------------------------------------------------------------------
    # Frontend: admission (called on handler threads)
    # ------------------------------------------------------------------
    def submit(self, data: dict) -> tuple[int, dict]:
        """Admit one ``/solve`` body; blocks until the query is answered.

        Returns ``(http_status, payload)``.  Admission outcomes:
        400 malformed query, 503 draining, 429 backpressure (queue full,
        or the ``serve.reject`` fault seam fired).
        """
        try:
            request = QueryRequest.from_dict(data)
        except ServeError as exc:
            return 400, error_payload("ServeError", str(exc))
        if self._draining.is_set():
            with self._counter_lock:
                self.counters["draining_rejects"] += 1
            return 503, error_payload(
                "Draining", "server is draining; no new queries are admitted"
            )
        plan = _faults.active_fault_plan()
        if plan is not None and plan.fire("serve.reject", key=request.pool_key):
            with self._counter_lock:
                self.counters["admission_rejects"] += 1
            return 429, error_payload(
                "AdmissionRejected", "injected admission rejection (serve.reject)"
            )
        job = _Job(request)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._counter_lock:
                self.counters["admission_rejects"] += 1
            return 429, error_payload(
                "QueueFull",
                f"query queue is full ({self.config.queue_size} pending); "
                "retry with backoff",
                queue_depth=self._queue.qsize(),
            )
        job.done.wait()
        return job.status, job.payload

    # ------------------------------------------------------------------
    # Solver loop (single thread; main thread under the CLI)
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve queued queries until drained, then shut everything down.

        Every dequeued job is answered exactly once — including the
        jobs still queued when the drain lands, which are flushed with
        503 rather than left to hang their connections.
        """
        try:
            while not (self._draining.is_set() and self._queue.empty()):
                try:
                    job = self._queue.get(timeout=0.05)
                except queue.Empty:
                    continue
                self._process_job(job)
                self._processed += 1
                if (
                    self.config.max_queries is not None
                    and self._processed >= self.config.max_queries
                ):
                    self.begin_drain()
        finally:
            self.shutdown()

    def _process_job(self, job: _Job) -> None:
        request = job.request
        key = request.pool_key
        waited = time.monotonic() - job.enqueued
        timeout = self.config.query_timeout_s
        if timeout is not None and waited >= timeout:
            # Overstayed the deadline in the queue: answering late would
            # just burn solver time the queued-behind queries need.
            with self._counter_lock:
                self.counters["query_timeouts"] += 1
            job.respond(
                504,
                error_payload(
                    "QueryTimeout",
                    f"query spent {waited:.3f}s queued, past its "
                    f"{timeout}s deadline",
                ),
            )
            return
        plan = _faults.active_fault_plan()
        if plan is not None:
            rule = plan.fire("serve.delay", key=key)
            if rule is not None and rule.delay_s:
                time.sleep(rule.delay_s)
        from repro.experiments.grid import _cell_deadline
        from repro.experiments.harness import run_algorithm

        remaining = None if timeout is None else max(timeout - waited, 1e-3)
        with self._pool_lock:
            try:
                entry, warm = self.pool.lease(request)
                before = entry.session.stats
                effective_seed = (
                    request.seed
                    if request.seed is not None
                    else self.config.config.seed
                )
                instance = entry.dataset.build_instance(
                    incentive_model=request.incentive_model,
                    alpha=request.alpha,
                    h=request.h,
                    budget_override=request.budget,
                    cpe_override=request.cpe,
                )
                with _cell_deadline(remaining):
                    result = run_algorithm(
                        request.algorithm,
                        entry.dataset,
                        instance,
                        self.config.config,
                        window=request.window,
                        seed=effective_seed,
                        session=entry.session,
                    )
            except CellTimeoutError as exc:
                self.pool.discard(key)
                with self._counter_lock:
                    self.counters["query_timeouts"] += 1
                job.respond(504, error_payload("QueryTimeout", str(exc)))
                return
            except ServeError as exc:
                with self._counter_lock:
                    self.counters["solve_errors"] += 1
                job.respond(400, error_payload("ServeError", str(exc)))
                return
            except Exception as exc:
                # Unknown failure mid-solve: quarantine the session (its
                # warm state is suspect) and surface the class name.
                self.pool.discard(key)
                with self._counter_lock:
                    self.counters["solve_errors"] += 1
                job.respond(500, error_payload(type(exc).__name__, str(exc)))
                return
            after = entry.session.stats
            evicted = self.pool.release(key)
        with self._counter_lock:
            self.counters["queries_served"] += 1
        job.respond(
            200,
            result_payload(
                request,
                result,
                effective_seed=effective_seed,
                serve={
                    "pool_key": key,
                    "warm_session": warm,
                    "solve_index": after["solves"] - 1,
                    "sample_batches": after["sample_batches"] - before["sample_batches"],
                    "sets_sampled": after["sets_sampled"] - before["sets_sampled"],
                    "store_hits": after["store_hits"] - before["store_hits"],
                    "store_misses": after["store_misses"] - before["store_misses"],
                    "store_bytes": after["store_bytes"],
                    "queue_wait_s": round(waited, 4),
                    "evicted": evicted,
                },
            ),
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health_payload(self) -> dict:
        """``/healthz`` body: liveness + admission posture, lock-free."""
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "queue_depth": self._queue.qsize(),
            "queue_size": self.config.queue_size,
            "sessions": len(self.pool),
        }

    def stats_payload(self) -> dict:
        """``/stats`` body: serve counters + the full pool/session stats.

        Snapshots under the pool lock, so numbers are consistent as of
        between-queries boundaries (a long in-flight solve delays the
        snapshot rather than corrupting it).
        """
        with self._counter_lock:
            counters = dict(self.counters)
        with self._pool_lock:
            pool = self.pool.stats()
        attempts = counters["queries_served"] + counters["solve_errors"]
        return {
            "serve": {
                **counters,
                "queue_depth": self._queue.qsize(),
                "queue_size": self.config.queue_size,
                "draining": self._draining.is_set(),
                "processed": self._processed,
                "warm_hit_rate": (
                    pool["warm_hits"] / attempts if attempts else 0.0
                ),
            },
            "pool": pool,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def _flush_pending(self) -> None:
        """Answer every still-queued job 503 (drain landed first)."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            with self._counter_lock:
                self.counters["draining_rejects"] += 1
            job.respond(
                503, error_payload("Draining", "server drained before this query ran")
            )

    def shutdown(self) -> None:
        """Stop the frontend, flush the queue, close every session.

        Idempotent; also safe when :meth:`start` never ran (tests that
        drive :meth:`submit` directly).  After this returns the pool is
        closed — i.e. zero live ``SharedGraphPool`` segments — and the
        listening socket is released.
        """
        if self._shutdown_done:
            return
        self._shutdown_done = True
        self._draining.set()
        if self._http_thread is not None:
            self._http.shutdown()
            self._http_thread.join(timeout=5.0)
        self._http.server_close()
        self._flush_pending()
        with self._pool_lock:
            self.pool.close()
        self._drained.set()

    def close(self) -> None:
        """Alias of :meth:`shutdown` (context-manager / lint symmetry)."""
        self.shutdown()

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReproServer(addr={self.address}, sessions={len(self.pool)}, "
            f"served={self.counters['queries_served']})"
        )
