"""The warm :class:`~repro.api.session.AllocationSession` pool behind
``repro serve``.

A :class:`SessionPool` maps :func:`repro.serve.schema.pool_key` — the
``(dataset, probability family)`` identity of a query — to one live
session, so every query over the same graph + probs rides the same RR
stores, KPT estimators, pagerank orders and worker pool.  It makes the
three service decisions the batch runners never had to:

* **Warm routing.**  :meth:`lease` returns the key's existing session
  (a *warm hit* — the solve adopts already-drawn RR sets) or builds the
  dataset and opens a fresh session (a *cold miss*), counting both.
* **LRU eviction under a global byte budget.**  Sessions report their
  *measured* store footprint (``session.stats["store_bytes"]`` — the
  narrowed/spilled member accounting from the memory-bounded stores,
  docs/ARCHITECTURE.md §4.1).  When the pool's total exceeds
  ``bytes_budget`` (or ``max_sessions`` is exceeded), whole
  least-recently-used sessions are closed and dropped — never the one
  that just served, so the active family always stays warm.
* **Lifecycle.**  :meth:`close` closes every session (idempotent, and
  what the server's drain path calls), so a clean shutdown leaves no
  ``SharedGraphPool`` shared-memory segments behind; a failed query's
  session is :meth:`discard`-ed rather than reused (the PR 6 rule: a
  poisoned session's state is unknown — tear it down, the next query
  reopens cold).

The pool is *not* thread-safe by itself: the server's single solver
loop is the only mutator, and the server serializes :meth:`stats`
snapshots against it (sessions are one-solve-at-a-time objects, so a
concurrent pool would need a session-level queue anyway — that queue is
the server's).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.api.session import AllocationSession
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import Dataset
from repro.serve.schema import QueryRequest


@dataclass
class PoolEntry:
    """One pooled session plus the bookkeeping eviction needs."""

    key: str
    dataset: Dataset
    session: AllocationSession
    queries: int = 0
    store_bytes: int = 0
    peak_store_bytes: int = 0
    dataset_entry: dict = field(default_factory=dict)


class SessionPool:
    """LRU pool of warm sessions keyed by ``(dataset, probs family)``.

    Parameters
    ----------
    config:
        The daemon's :class:`ExperimentConfig`; its compiled
        :class:`~repro.api.spec.EngineSpec` becomes every session's base
        spec, pinning backend/workers/kernel/``rr_bytes_budget`` for the
        pool's lifetime.
    bytes_budget:
        Global cap on the summed measured ``store_bytes`` across all
        pooled sessions (``None`` = unbounded).  Enforced by
        :meth:`evict_over_budget` after every solve: least-recently-used
        sessions are closed whole until the total fits (the
        just-used session is only evicted if it alone exceeds the
        budget and ``evict_active=True``).
    max_sessions:
        Cap on the number of pooled sessions (``None`` = unbounded).
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        bytes_budget: int | None = None,
        max_sessions: int | None = None,
    ) -> None:
        if bytes_budget is not None and bytes_budget < 1:
            raise ServeError(f"bytes_budget must be >= 1, got {bytes_budget}")
        if max_sessions is not None and max_sessions < 1:
            raise ServeError(f"max_sessions must be >= 1, got {max_sessions}")
        self.config = config or ExperimentConfig()
        self.bytes_budget = bytes_budget
        self.max_sessions = max_sessions
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._closed = False
        self.counters = {
            "warm_hits": 0,
            "cold_misses": 0,
            "evictions": 0,
            "evicted_bytes": 0,
            "discards": 0,
            "stale_discards": 0,
        }

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def lease(self, request: QueryRequest) -> tuple[PoolEntry, bool]:
        """The entry serving *request*; ``(entry, warm)``.

        Marks the entry most-recently-used.  A cold miss builds the
        dataset (synthetic analog or ingested edge list — the same
        routing as the grid runner's
        :func:`~repro.experiments.grid._cell_dataset`) and opens one
        :class:`AllocationSession` on its graph.
        """
        if self._closed:
            raise ServeError("session pool is closed")
        key = request.pool_key
        entry = self._entries.get(key)
        if entry is not None and entry.session.graph_epoch != 0:
            # The session's graph was mutated since the pool opened it
            # (apply_edge_updates bumped graph_epoch), so it no longer
            # answers for the dataset entry the pool key names — a warm
            # hit here would serve results for a graph the client never
            # asked about.  Discard it and reopen cold below
            # (docs/ARCHITECTURE.md §14).
            self._entries.pop(key)
            entry.session.close()
            self.counters["stale_discards"] += 1
            entry = None
        if entry is not None:
            self._entries.move_to_end(key)
            self.counters["warm_hits"] += 1
            warm = True
        else:
            from repro.experiments.grid import _cell_dataset

            dataset = _cell_dataset(dict(request.dataset), memo={})
            session = AllocationSession(
                dataset.graph, spec=self.config.engine_spec(opt_lower="kpt")
            )
            entry = PoolEntry(
                key=key,
                dataset=dataset,
                session=session,
                dataset_entry=dict(request.dataset),
            )
            self._entries[key] = entry
            self.counters["cold_misses"] += 1
            warm = False
        entry.queries += 1
        return entry, warm

    def release(self, key: str) -> list[str]:
        """Refresh *key*'s measured footprint, then enforce the budgets.

        Called by the server after every successful solve; returns the
        keys evicted (possibly empty).
        """
        entry = self._entries.get(key)
        if entry is not None:
            stats = entry.session.stats
            entry.store_bytes = int(stats["store_bytes"])
            entry.peak_store_bytes = int(stats["peak_store_bytes"])
        return self.evict_over_budget(protect=key)

    def discard(self, key: str) -> None:
        """Close and drop *key*'s session (failed/timed-out query path).

        A solve interrupted anywhere leaves the session's warm state
        unknown, so — exactly like the grid runner's quarantine path —
        the session is never reused; the next query on this key opens a
        fresh one.
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.session.close()
            self.counters["discards"] += 1

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def total_store_bytes(self) -> int:
        """Summed measured footprint of all pooled sessions (as of each
        session's last :meth:`release`)."""
        return sum(entry.store_bytes for entry in self._entries.values())

    def evict_over_budget(self, protect: str | None = None) -> list[str]:
        """Evict LRU sessions until both budgets hold; returns evicted keys.

        *protect* (the just-served key) is evicted only if it is the
        sole remaining session and still exceeds ``bytes_budget`` —
        a single family bigger than the budget must not pin memory
        forever, and its next query simply reopens cold.
        """
        evicted: list[str] = []
        while (
            self.max_sessions is not None
            and len(self._entries) > self.max_sessions
        ):
            victim = self._lru_key(exclude=protect)
            if victim is None:
                victim = next(iter(self._entries))
            evicted.append(self._evict(victim))
        if self.bytes_budget is None:
            return evicted
        while self._entries and self.total_store_bytes() > self.bytes_budget:
            victim = self._lru_key(exclude=protect)
            if victim is None:
                # Only the protected session remains and it alone busts
                # the budget: evict it too — it stays correct (next
                # query reopens cold), and total bytes stay bounded.
                victim = next(iter(self._entries))
            evicted.append(self._evict(victim))
        return evicted

    def _lru_key(self, exclude: str | None) -> str | None:
        for key in self._entries:
            if key != exclude:
                return key
        return None

    def _evict(self, key: str) -> str:
        entry = self._entries.pop(key)
        self.counters["evictions"] += 1
        self.counters["evicted_bytes"] += entry.store_bytes
        entry.session.close()
        return key

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def entries(self) -> list[PoolEntry]:
        """Pooled entries, least-recently-used first."""
        return list(self._entries.values())

    def stats(self) -> dict:
        """JSON-able pool observability (fed into the ``/stats`` endpoint).

        Per-session rows are LRU-ordered (first row = next eviction
        candidate) and embed each session's own
        :attr:`~repro.api.session.AllocationSession.stats`, so the
        endpoint exposes warm-store, memory and fault counters
        end to end.
        """
        sessions = []
        for entry in self._entries.values():
            sessions.append(
                {
                    "key": entry.key,
                    "dataset": dict(entry.dataset_entry),
                    "queries": entry.queries,
                    "store_bytes": entry.store_bytes,
                    "peak_store_bytes": entry.peak_store_bytes,
                    "session": entry.session.stats,
                }
            )
        return {
            **self.counters,
            "sessions": sessions,
            "session_count": len(self._entries),
            "total_store_bytes": self.total_store_bytes(),
            "bytes_budget": self.bytes_budget,
            "max_sessions": self.max_sessions,
        }

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Close every pooled session and refuse further leases (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for key in list(self._entries):
            entry = self._entries.pop(key)
            entry.session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionPool(sessions={len(self._entries)}, "
            f"bytes={self.total_store_bytes()}, budget={self.bytes_budget})"
        )
