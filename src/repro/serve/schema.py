"""Request/response schema of the ``repro serve`` allocation service.

One allocation query is a :class:`QueryRequest`: a grid-style *dataset
entry* (which fully determines the graph **and** the probability family
— the same contract as :func:`repro.experiments.grid.session_group_key`)
plus the per-query axes a warm
:class:`~repro.api.session.AllocationSession` re-solves cheaply:
algorithm, ``h``, budget, CPE, incentive model, α, TI-CSRM window and
the RNG seed.  Deliberately *absent* are engine-accuracy knobs (``eps``,
``theta_cap``, backend, workers, kernel, byte budgets): those are fixed
by the daemon's :class:`~repro.experiments.config.ExperimentConfig` at
startup, because a session pins them for its lifetime — a query that
could flip them would silently fork the pool key space.

Requests and responses are plain JSON objects; :meth:`QueryRequest.from_dict`
rejects unknown keys and invalid axis values with
:class:`~repro.errors.ServeError` (the server maps that to HTTP 400).
:func:`result_payload` serializes an
:class:`~repro.core.allocation.AllocationResult` losslessly — seed sets
in insertion order, per-ad revenue/cost floats untouched — so a served
response can be compared byte-for-byte against a direct
:func:`repro.solve` of the same spec and seed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.errors import ServeError
from repro.api.registry import algorithm_names
from repro.core.allocation import AllocationResult
from repro.incentives.models import INCENTIVE_MODELS


def _canonical(data) -> str:
    """Canonical JSON for digests (same form the grid runner uses)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def pool_key(dataset_entry: dict) -> str:
    """The warm-session pool key of a dataset entry.

    Identical in shape and semantics to
    :func:`repro.experiments.grid.session_group_key`: a human-readable
    dataset label plus a digest of the *full* entry (name/path and every
    builder option, probability model included), so two entries with the
    same label but different builder options never share a session.
    """
    from repro.experiments.grid import dataset_label

    digest = hashlib.sha256(_canonical(dict(dataset_entry)).encode()).hexdigest()[:8]
    return f"{dataset_label(dict(dataset_entry))}@{digest}"


@dataclass(frozen=True)
class QueryRequest:
    """One allocation query, validated at construction.

    ``dataset`` is a grid-style entry (``{"name": ...}`` for a synthetic
    analog or ``{"path": ...}`` for an ingested edge list, plus builder
    keyword arguments such as ``n``/``h``/``probs``).  ``h``, ``budget``
    and ``cpe`` override the built dataset's marketplace per query —
    exactly the knobs of
    :meth:`repro.experiments.datasets.Dataset.build_instance`.  ``seed``
    is the query's RNG seed; ``None`` falls back to the daemon config's
    seed, and the *effective* seed is echoed in the response, so every
    response is reproducible offline.
    """

    dataset: dict
    algorithm: str = "TI-CSRM"
    h: int | None = None
    budget: float | None = None
    cpe: float | None = None
    incentive_model: str = "linear"
    alpha: float = 1.0
    window: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        from repro.experiments.grid import dataset_label

        if not isinstance(self.dataset, dict):
            raise ServeError(
                f"dataset must be an object like {{'name': ...}}, got "
                f"{self.dataset!r}"
            )
        try:
            dataset_label(self.dataset)
        except Exception as exc:
            raise ServeError(str(exc)) from None
        object.__setattr__(self, "dataset", dict(self.dataset))
        if self.algorithm not in algorithm_names():
            raise ServeError(
                f"unknown algorithm {self.algorithm!r}; "
                f"options: {list(algorithm_names())}"
            )
        if self.incentive_model not in INCENTIVE_MODELS:
            raise ServeError(
                f"unknown incentive model {self.incentive_model!r}; "
                f"options: {sorted(INCENTIVE_MODELS)}"
            )
        self._check_number("alpha", minimum=0.0)
        self._check_number("budget", minimum=0.0, optional=True)
        self._check_number("cpe", minimum=0.0, optional=True)
        self._check_int("h", minimum=1, optional=True)
        self._check_int("window", minimum=1, optional=True)
        self._check_int("seed", minimum=0, optional=True)

    def _check_number(self, name: str, *, minimum: float, optional: bool = False) -> None:
        value = getattr(self, name)
        if value is None:
            if optional:
                return
            raise ServeError(f"{name} must be a number, got None")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServeError(f"{name} must be a number, got {value!r}")
        if value < minimum:
            raise ServeError(f"{name} must be >= {minimum}, got {value}")
        object.__setattr__(self, name, float(value))

    def _check_int(self, name: str, *, minimum: int, optional: bool = False) -> None:
        value = getattr(self, name)
        if value is None:
            if optional:
                return
            raise ServeError(f"{name} must be an integer, got None")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ServeError(f"{name} must be an integer, got {value!r}")
        if value < minimum:
            raise ServeError(f"{name} must be >= {minimum}, got {value}")

    @property
    def pool_key(self) -> str:
        """The session-pool key: the query's dataset entry, digested."""
        return pool_key(self.dataset)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The query as a JSON-able dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "QueryRequest":
        """Build a query from a parsed JSON object; rejects unknown keys."""
        if not isinstance(data, dict):
            raise ServeError(
                f"query must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ServeError(
                f"unknown query keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        if "dataset" not in data:
            raise ServeError("query needs a 'dataset' entry")
        return cls(**data)


def result_payload(
    request: QueryRequest,
    result: AllocationResult,
    *,
    effective_seed: int | None,
    serve: dict | None = None,
) -> dict:
    """Serialize one solved query as the daemon's JSON response body.

    The allocation is lossless: ``allocation[i]`` is ad *i*'s seed list
    in insertion order and the per-ad revenue/cost lists are the
    engine's floats unrounded, so equality with a direct
    :func:`repro.solve` run is byte-equality of the JSON.  ``serve``
    carries the service-level provenance block (pool key, warm hit,
    queue wait) the pool/server attach.
    """
    return {
        "status": "ok",
        "query": request.to_dict(),
        "effective_seed": effective_seed,
        "algorithm": result.algorithm,
        "allocation": result.allocation.seed_sets(),
        "revenue_per_ad": [float(r) for r in result.revenue_per_ad],
        "seeding_cost_per_ad": [float(c) for c in result.seeding_cost_per_ad],
        "revenue": result.total_revenue,
        "seed_cost": result.total_seeding_cost,
        "seeds": result.total_seeds,
        "runtime_s": float(result.runtime_seconds),
        "engine_spec": result.extras.get("engine_spec"),
        "serve": serve or {},
    }


def error_payload(error_type: str, message: str, **extra) -> dict:
    """The JSON body of every non-200 response (uniform error shape)."""
    payload = {"status": "error", "error_type": error_type, "error": str(message)[:500]}
    payload.update(extra)
    return payload
