"""Monte-Carlo and RR-based influence-spread estimation.

Exact spread computation is #P-hard under IC (and hence TIC), so the
paper estimates: Monte-Carlo simulation (5K runs) for the singleton
spreads that parametrize incentives on the quality datasets, out-degree
proxies on the scalability datasets, and RR sampling inside the
algorithms.  This module provides all three building blocks; the
RR-based batch singleton estimator is the offline default because one
shared sample prices every node at once (same estimand, far cheaper —
see DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph
from repro.diffusion.simulate import simulate_cascade


def estimate_spread(
    graph: DiGraph,
    probs: np.ndarray,
    seeds,
    n_runs: int = 1000,
    rng=None,
) -> float:
    """Monte-Carlo estimate of ``σ(S)``: mean activated count over *n_runs*."""
    if n_runs < 1:
        raise EstimationError(f"n_runs must be positive, got {n_runs}")
    rng = as_generator(rng)
    seeds = list(seeds)
    if not seeds:
        return 0.0
    total = 0
    for _ in range(n_runs):
        total += int(simulate_cascade(graph, probs, seeds, rng).sum())
    return total / n_runs


def estimate_singleton_spreads(
    graph: DiGraph,
    probs: np.ndarray,
    n_runs: int = 1000,
    rng=None,
    nodes=None,
) -> np.ndarray:
    """Monte-Carlo ``σ({u})`` for each node (paper's 5K-run procedure).

    Returns a dense length-``n`` vector; *nodes* restricts the computation
    (other entries are left as 0).  Cost is ``O(len(nodes) · n_runs)``
    cascades — prefer :func:`estimate_singleton_spreads_rr` at scale.
    """
    rng = as_generator(rng)
    result = np.zeros(graph.n, dtype=np.float64)
    node_iter = range(graph.n) if nodes is None else [int(v) for v in nodes]
    for u in node_iter:
        result[u] = estimate_spread(graph, probs, [u], n_runs=n_runs, rng=rng)
    return result


def estimate_singleton_spreads_rr(
    graph: DiGraph,
    probs: np.ndarray,
    n_samples: int = 20_000,
    rng=None,
    backend=None,
) -> np.ndarray:
    """RR-based batch estimate of every singleton spread.

    ``σ({u}) = n · E[u ∈ R]`` for a random RR set ``R``, so counting
    memberships over one shared sample prices all nodes simultaneously.
    Every estimate is floored at 1: a seed always engages itself.

    *backend* is an already-built
    :class:`~repro.rrset.backend.SamplerBackend` over ``(graph, probs)``
    to draw through (e.g. a parallel backend the caller owns); ``None``
    builds a serial one, bit-identical to the pre-seam estimator.
    """
    if n_samples < 1:
        raise EstimationError(f"n_samples must be positive, got {n_samples}")
    rng = as_generator(rng)
    if backend is None:
        from repro.rrset.backend import SerialBackend

        backend = SerialBackend(graph, probs)
    # Members are unique within each set, so one bincount over the flat
    # batch counts every node's memberships across all sets at once.
    members, _ = backend.sample_batch_flat(n_samples, rng)
    counts = np.bincount(members, minlength=graph.n)
    return np.maximum(graph.n * counts / n_samples, 1.0)


def degree_proxy_spreads(graph: DiGraph) -> np.ndarray:
    """Out-degree + 1 as a stand-in for ``σ({u})``.

    The paper uses out-degree on DBLP and LIVEJOURNAL "due to the
    prohibitive computational cost of Monte Carlo simulations"; the +1
    accounts for the seed's own engagement so the proxy is always a valid
    spread (≥ 1).
    """
    return graph.out_degrees().astype(np.float64) + 1.0
