"""Cascade simulation and influence-spread estimation."""

from repro.diffusion.simulate import simulate_cascade, simulate_cascade_with_steps
from repro.diffusion.montecarlo import (
    estimate_spread,
    estimate_singleton_spreads,
    estimate_singleton_spreads_rr,
)
from repro.diffusion.competitive import (
    simulate_competitive_cascades,
    estimate_competitive_spreads,
    estimate_competitive_revenue,
)
from repro.diffusion.worlds import (
    sample_world,
    reachable_from,
    exact_spread,
    exact_singleton_spreads,
)

__all__ = [
    "simulate_cascade",
    "simulate_cascade_with_steps",
    "estimate_spread",
    "estimate_singleton_spreads",
    "estimate_singleton_spreads_rr",
    "simulate_competitive_cascades",
    "estimate_competitive_spreads",
    "estimate_competitive_revenue",
    "sample_world",
    "reachable_from",
    "exact_spread",
    "exact_singleton_spreads",
]
