"""Possible worlds and exact spread computation for small graphs.

The IC/TIC models are distributions over deterministic graphs ("possible
worlds"): arc *e* survives independently with probability ``p_e`` and
``σ(S)`` is the expected number of nodes reachable from ``S`` over that
distribution.  These routines enumerate the distribution exactly —
exponential in the number of *random* arcs (``0 < p < 1``), so they are
gated to tiny graphs — and serve as the ground truth against which the
Monte-Carlo and RR estimators are validated.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro._rng import as_generator
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph

MAX_RANDOM_EDGES = 20


def sample_world(graph: DiGraph, probs: np.ndarray, rng=None) -> np.ndarray:
    """Draw one possible world: a boolean live-arc mask in canonical order."""
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape != (graph.m,):
        raise EstimationError(f"probs must have shape ({graph.m},), got {probs.shape}")
    rng = as_generator(rng)
    return rng.random(graph.m) < probs


def reachable_from(graph: DiGraph, live: np.ndarray, seeds) -> np.ndarray:
    """Boolean reachability vector from *seeds* using only live arcs."""
    live = np.asarray(live, dtype=bool)
    if live.shape != (graph.m,):
        raise EstimationError(f"live mask must have shape ({graph.m},), got {live.shape}")
    reached = np.zeros(graph.n, dtype=bool)
    stack: list[int] = []
    for s in seeds:
        s = int(s)
        if not reached[s]:
            reached[s] = True
            stack.append(s)
    indptr = graph.out_indptr
    heads = graph.out_heads
    while stack:
        u = stack.pop()
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            if live[k]:
                v = int(heads[k])
                if not reached[v]:
                    reached[v] = True
                    stack.append(v)
    return reached


def exact_spread(graph: DiGraph, probs: np.ndarray, seeds) -> float:
    """Exact ``σ(S)`` by enumerating all possible worlds.

    Arcs with ``p ∈ {0, 1}`` are fixed; the remaining *random* arcs are
    enumerated, so the cost is ``O(2^r)`` reachability computations where
    ``r`` is the number of random arcs (must be ≤ ``MAX_RANDOM_EDGES``).
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape != (graph.m,):
        raise EstimationError(f"probs must have shape ({graph.m},), got {probs.shape}")
    seeds = [int(s) for s in seeds]
    if not seeds:
        return 0.0
    random_edges = np.flatnonzero((probs > 0.0) & (probs < 1.0))
    if random_edges.size > MAX_RANDOM_EDGES:
        raise EstimationError(
            f"{random_edges.size} random arcs exceed the exact-enumeration "
            f"limit of {MAX_RANDOM_EDGES}"
        )
    base_live = probs >= 1.0
    total = 0.0
    for assignment in itertools.product((False, True), repeat=random_edges.size):
        live = base_live.copy()
        weight = 1.0
        for edge, on in zip(random_edges, assignment):
            p = probs[edge]
            if on:
                live[edge] = True
                weight *= p
            else:
                weight *= 1.0 - p
        if weight == 0.0:
            continue
        total += weight * float(reachable_from(graph, live, seeds).sum())
    return total


def exact_singleton_spreads(graph: DiGraph, probs: np.ndarray) -> np.ndarray:
    """Exact ``σ({u})`` for every node (tiny graphs only)."""
    return np.asarray(
        [exact_spread(graph, probs, [u]) for u in range(graph.n)],
        dtype=np.float64,
    )
