"""Competitive multi-ad propagation (paper future work iii).

Section 7 lists "integrating hard competition constraints into the
influence propagation process" as an open direction: the RM model's
cascades are independent per ad (a user may engage with several ads),
while in a *competitive* cascade each user engages with at most one ad —
the first to reach them — so ads in the same topical market cannibalize
each other's audiences.

This module implements that model as a simultaneous multi-source IC
process: all seed sets activate at step 0 (a seed engages with the ad it
endorses), frontiers expand in lock-step, each arc is tried once per
(ad, activation) with the ad-specific probability ``p^i_{u,v}``, and a
user reached by several ads in the same step picks one uniformly at
random.  With a single ad it reduces exactly to the standard IC cascade.

:func:`estimate_competitive_revenue` re-prices a finished allocation
under this model, quantifying how much of the independent-cascade
revenue survives hard competition (the reproduction's
``bench_competition`` ablation).
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph


def simulate_competitive_cascades(
    graph: DiGraph,
    ad_probs: list[np.ndarray],
    seed_sets: list[list[int]],
    rng=None,
) -> np.ndarray:
    """Run one competitive cascade; return the per-node winning ad (-1 = none).

    Parameters
    ----------
    graph:
        The social graph.
    ad_probs:
        Per-ad arc probabilities in canonical edge order, one per ad.
    seed_sets:
        Pairwise-disjoint seed lists (the partition matroid guarantees
        this for any RM allocation).
    rng:
        Seed or generator.
    """
    if len(ad_probs) != len(seed_sets):
        raise EstimationError("ad_probs and seed_sets must align")
    for probs in ad_probs:
        if np.asarray(probs).shape != (graph.m,):
            raise EstimationError(
                f"each probability vector must have shape ({graph.m},)"
            )
    rng = as_generator(rng)
    n = graph.n
    winner = np.full(n, -1, dtype=np.int64)
    frontier: list[int] = []
    for ad, seeds in enumerate(seed_sets):
        for u in seeds:
            u = int(u)
            if winner[u] != -1:
                raise EstimationError(
                    f"node {u} seeds two ads; seed sets must be disjoint"
                )
            winner[u] = ad
            frontier.append(u)

    indptr = graph.out_indptr
    heads = graph.out_heads
    while frontier:
        # Collect this step's attempted conversions: node -> candidate ads.
        claims: dict[int, list[int]] = {}
        for u in frontier:
            ad = int(winner[u])
            probs = ad_probs[ad]
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            flips = rng.random(hi - lo) < probs[lo:hi]
            if not flips.any():
                continue
            for v in heads[lo:hi][flips]:
                v = int(v)
                if winner[v] == -1:
                    claims.setdefault(v, []).append(ad)
        next_frontier: list[int] = []
        for v, ads in claims.items():
            chosen = ads[0] if len(ads) == 1 else int(ads[rng.integers(0, len(ads))])
            winner[v] = chosen
            next_frontier.append(v)
        frontier = next_frontier
    return winner


def estimate_competitive_spreads(
    graph: DiGraph,
    ad_probs: list[np.ndarray],
    seed_sets: list[list[int]],
    n_runs: int = 200,
    rng=None,
) -> np.ndarray:
    """Expected per-ad engagement counts under competitive propagation."""
    if n_runs < 1:
        raise EstimationError(f"n_runs must be positive, got {n_runs}")
    rng = as_generator(rng)
    h = len(seed_sets)
    totals = np.zeros(h, dtype=np.float64)
    for _ in range(n_runs):
        winner = simulate_competitive_cascades(graph, ad_probs, seed_sets, rng)
        for ad in range(h):
            totals[ad] += float((winner == ad).sum())
    return totals / n_runs


def estimate_competitive_revenue(
    instance,
    seed_sets: list[list[int]],
    n_runs: int = 200,
    rng=None,
) -> list[float]:
    """Per-ad revenue ``cpe(i)·E[engagements_i]`` under hard competition."""
    spreads = estimate_competitive_spreads(
        instance.graph, instance.ad_probs, seed_sets, n_runs=n_runs, rng=rng
    )
    return [instance.cpe(i) * float(spreads[i]) for i in range(len(seed_sets))]
