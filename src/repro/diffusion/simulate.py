"""Forward simulation of (topic-aware) independent cascades.

Under TIC an ad cascades like plain IC but with ad-specific arc
probabilities ``p^i_{u,v}`` (Eq. 1); the simulator therefore takes a
plain per-edge probability vector and is shared by both models.  When a
node activates it gets exactly one chance to activate each out-neighbor;
because a node activates at most once, flipping each of its out-arcs once
at activation time realizes the model exactly.
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph


def _check_probs(graph: DiGraph, probs: np.ndarray) -> np.ndarray:
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape != (graph.m,):
        raise EstimationError(
            f"edge probabilities must have shape ({graph.m},), got {probs.shape}"
        )
    return probs


def simulate_cascade(
    graph: DiGraph,
    probs: np.ndarray,
    seeds,
    rng=None,
) -> np.ndarray:
    """Run one cascade; return the boolean activation vector.

    Parameters
    ----------
    graph, probs:
        Graph and per-edge activation probabilities (canonical order).
    seeds:
        Iterable of seed node ids; all are active at step 0.
    rng:
        Seed or generator for the arc coin flips.
    """
    probs = _check_probs(graph, probs)
    rng = as_generator(rng)
    active = np.zeros(graph.n, dtype=bool)
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if not active[s]:
            active[s] = True
            frontier.append(s)
    indptr = graph.out_indptr
    heads = graph.out_heads
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            flips = rng.random(hi - lo) < probs[lo:hi]
            if not flips.any():
                continue
            for v in heads[lo:hi][flips]:
                if not active[v]:
                    active[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return active


def simulate_cascade_with_steps(
    graph: DiGraph,
    probs: np.ndarray,
    seeds,
    rng=None,
) -> np.ndarray:
    """Run one cascade; return per-node activation step (-1 = never active).

    Seeds activate at step 0; a node activated by a step-``t`` node gets
    step ``t + 1``.  Used to build training logs for the TIC learner.
    """
    probs = _check_probs(graph, probs)
    rng = as_generator(rng)
    steps = np.full(graph.n, -1, dtype=np.int64)
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if steps[s] < 0:
            steps[s] = 0
            frontier.append(s)
    indptr = graph.out_indptr
    heads = graph.out_heads
    t = 0
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            flips = rng.random(hi - lo) < probs[lo:hi]
            if not flips.any():
                continue
            for v in heads[lo:hi][flips]:
                if steps[v] < 0:
                    steps[v] = t + 1
                    next_frontier.append(int(v))
        frontier = next_frontier
        t += 1
    return steps
