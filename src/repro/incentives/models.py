"""The four seed-incentive models of Section 5.

Incentives are monotone functions of the seed's ad-specific singleton
spread, ``c_i(u) = f(σ_i({u}))``, scaled by a host-chosen dollar amount
``α`` that controls how expensive influencers are:

* linear       ``c_i(u) = α · σ_i({u})``
* constant     ``c_i(u) = α · (Σ_v σ_i({v})) / n``    (same for every u)
* sublinear    ``c_i(u) = α · log σ_i({u})``
* superlinear  ``c_i(u) = α · σ_i({u})²``

The models deliberately span a wide ``ρ_max/ρ_min`` range: constant
nullifies cost-sensitivity (TI-CARM ≡ TI-CSRM), superlinear maximizes
the payoff of cost-sensitive seeding (Figures 2–3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import InstanceError


def _validate(singleton_spreads: np.ndarray, alpha: float) -> np.ndarray:
    spreads = np.asarray(singleton_spreads, dtype=np.float64)
    if spreads.ndim != 1 or spreads.size == 0:
        raise InstanceError("singleton spreads must be a non-empty 1-D vector")
    if np.any(spreads < 1.0 - 1e-9):
        raise InstanceError(
            "singleton spreads must be >= 1 (a seed always engages itself)"
        )
    if alpha <= 0:
        raise InstanceError(f"alpha must be positive, got {alpha}")
    return spreads


def linear_incentives(singleton_spreads, alpha: float) -> np.ndarray:
    """``α · σ_i({u})``."""
    return alpha * _validate(singleton_spreads, alpha)


def constant_incentives(singleton_spreads, alpha: float) -> np.ndarray:
    """``α · mean(σ_i)`` for every node — the cost-insensitivity control."""
    spreads = _validate(singleton_spreads, alpha)
    return np.full(spreads.size, alpha * spreads.mean())


def sublinear_incentives(singleton_spreads, alpha: float) -> np.ndarray:
    """``α · log σ_i({u})`` (0 for spread-1 nodes, as in the paper)."""
    return alpha * np.log(_validate(singleton_spreads, alpha))


def superlinear_incentives(singleton_spreads, alpha: float) -> np.ndarray:
    """``α · σ_i({u})²``."""
    spreads = _validate(singleton_spreads, alpha)
    return alpha * spreads * spreads


@dataclass(frozen=True)
class IncentiveModel:
    """Named incentive transform with the α grid the paper sweeps."""

    name: str
    transform: Callable[[np.ndarray, float], np.ndarray]
    # α grids used in Figures 2/3 (FLIXSTER grid, EPINIONS grid).
    paper_alphas_flixster: tuple[float, ...]
    paper_alphas_epinions: tuple[float, ...]

    def __call__(self, singleton_spreads, alpha: float) -> np.ndarray:
        return self.transform(singleton_spreads, alpha)


INCENTIVE_MODELS: dict[str, IncentiveModel] = {
    "linear": IncentiveModel(
        "linear",
        linear_incentives,
        (0.1, 0.2, 0.3, 0.4, 0.5),
        (0.1, 0.2, 0.3, 0.4, 0.5),
    ),
    "constant": IncentiveModel(
        "constant",
        constant_incentives,
        (0.1, 0.2, 0.3, 0.4, 0.5),
        (6.0, 7.0, 8.0, 9.0, 10.0),
    ),
    "sublinear": IncentiveModel(
        "sublinear",
        sublinear_incentives,
        (1.0, 2.0, 3.0, 4.0, 5.0),
        (11.0, 12.0, 13.0, 14.0, 15.0),
    ),
    "superlinear": IncentiveModel(
        "superlinear",
        superlinear_incentives,
        (0.0001, 0.0002, 0.0003, 0.0004, 0.0005),
        (0.0006, 0.0007, 0.0008, 0.0009, 0.001),
    ),
}


def compute_incentives(singleton_spreads, model: str | IncentiveModel, alpha: float) -> np.ndarray:
    """Evaluate an incentive model by name or instance."""
    if isinstance(model, str):
        try:
            model = INCENTIVE_MODELS[model]
        except KeyError:
            raise InstanceError(
                f"unknown incentive model {model!r}; options: {sorted(INCENTIVE_MODELS)}"
            ) from None
    return model(singleton_spreads, alpha)
