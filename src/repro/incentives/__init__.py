"""Seed-user incentive models ``c_i(u) = f(σ_i({u}))``."""

from repro.incentives.models import (
    IncentiveModel,
    INCENTIVE_MODELS,
    linear_incentives,
    constant_incentives,
    sublinear_incentives,
    superlinear_incentives,
    compute_incentives,
)

__all__ = [
    "IncentiveModel",
    "INCENTIVE_MODELS",
    "linear_incentives",
    "constant_incentives",
    "sublinear_incentives",
    "superlinear_incentives",
    "compute_incentives",
]
