#!/usr/bin/env python
"""Verify that documentation staleness markers point at live code.

Markdown files under ``docs/`` (plus the top-level ``README.md``) may
tie sections to code with HTML-comment markers:

    <!-- staleness-marker: src/repro/rrset/sampler.py:RRSampler.sample_batch_flat -->

Formats accepted after the path:

* ``path`` — the file must exist;
* ``path:function`` — a module-level function (or class) of that name;
* ``path:Class.method`` — a method (or nested class / class-level
  assignment) inside the class.

Resolution is purely syntactic (``ast``), so the check needs no
imports, no dependencies and no ``PYTHONPATH``.  Exit code is non-zero
when any marker fails to resolve, or when a contract document
(``docs/ARCHITECTURE.md``, ``docs/EXPERIMENTS.md``) exists but
contains no markers at all (a wholesale deletion should fail loudly,
not pass vacuously).

Usage: ``python tools/check_doc_markers.py [repo_root]``
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

MARKER_RE = re.compile(r"<!--\s*staleness-marker:\s*(?P<target>[^\s]+)\s*-->")


def iter_marker_files(root: Path):
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))
    readme = root / "README.md"
    if readme.is_file():
        yield readme


def find_markers(path: Path) -> list[tuple[int, str]]:
    """All ``(line_number, target)`` markers in one markdown file."""
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in MARKER_RE.finditer(line):
            out.append((lineno, match.group("target")))
    return out


def _top_level_names(tree: ast.Module) -> dict[str, ast.AST]:
    names: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names[node.name] = node
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names[tgt.id] = node
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names[node.target.id] = node
    return names


def _class_members(cls: ast.ClassDef) -> set[str]:
    members: set[str] = set()
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            members.add(node.name)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    members.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            members.add(node.target.id)
    return members


def resolve(root: Path, target: str) -> str | None:
    """Return an error string, or ``None`` when *target* resolves."""
    path_part, _, symbol = target.partition(":")
    file_path = root / path_part
    if not file_path.is_file():
        return f"file {path_part!r} does not exist"
    if not symbol:
        return None
    if not path_part.endswith(".py"):
        return f"symbol lookup requires a .py file, got {path_part!r}"
    try:
        tree = ast.parse(file_path.read_text())
    except SyntaxError as exc:
        return f"cannot parse {path_part!r}: {exc}"
    names = _top_level_names(tree)
    head, _, tail = symbol.partition(".")
    if head not in names:
        return f"{path_part!r} has no top-level symbol {head!r}"
    if not tail:
        return None
    cls = names[head]
    if not isinstance(cls, ast.ClassDef):
        return f"{head!r} in {path_part!r} is not a class (cannot hold {tail!r})"
    if tail not in _class_members(cls):
        return f"class {head!r} in {path_part!r} has no member {tail!r}"
    return None


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    failures: list[str] = []
    total = 0
    for md in iter_marker_files(root):
        for lineno, target in find_markers(md):
            total += 1
            error = resolve(root, target)
            if error is not None:
                failures.append(f"{md.relative_to(root)}:{lineno}: {target} — {error}")
    for name in ("ARCHITECTURE.md", "EXPERIMENTS.md"):
        doc = root / "docs" / name
        if doc.is_file() and not find_markers(doc):
            failures.append(
                f"docs/{name}: contains no staleness markers "
                "(sections must stay tied to code)"
            )
    if failures:
        print(f"{len(failures)} stale doc marker(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"all {total} doc markers resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
