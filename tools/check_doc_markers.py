#!/usr/bin/env python
"""Back-compat shim: the doc-marker check now lives in the lint framework.

The implementation moved to :mod:`tools.lint.rules.doc_markers` (rule
``R6``/``doc-markers``), which CI runs via ``python -m tools.lint``.
This entry point keeps the historical invocation working:

    python tools/check_doc_markers.py [repo_root]

Same output, same exit codes (0 clean, 1 on failures).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.lint.rules.doc_markers import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
