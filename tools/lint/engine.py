"""Lint engine: file walking, pragma suppression, baseline, orchestration.

:func:`run_lint` is the one entry point — the CLI, the ``repro lint``
subcommand, and the test suite all call it.  Semantics:

* **Pragmas** — a ``# repro-lint: disable=<rule>[,<rule>…]`` comment on
  a flagged line suppresses matching findings on that line; rules are
  named by id (``R1``) or slug (``rng-discipline``); ``disable=all``
  suppresses every rule.  Parse errors (``E0``) cannot be suppressed.
* **Baseline** — a committed JSON file of grandfathered findings
  (matched by ``(rule, path, message)`` so line drift doesn't churn
  it).  Baselined findings don't fail the run but are reported in the
  summary.  The target state is an *empty* baseline: fix, don't
  grandfather.
* **Exit semantics** — callers fail when ``LintResult.findings`` is
  non-empty; baselined/suppressed findings never fail a run.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path

from tools.lint.base import Finding, FileContext, RepoContext, Rule
from tools.lint.rules import all_rules

PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_\-, ]+)")

#: Default lint roots, relative to the repo root.
DEFAULT_PATHS = ("src",)


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run; ``findings`` is what fails a build."""

    findings: list[Finding]
    baselined: list[Finding]
    suppressed: list[Finding]
    files_checked: int
    rules: list[Rule]
    stale_baseline: list[dict]  #: baseline entries that matched nothing

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": [
                {"id": r.id, "name": r.name, "description": r.description}
                for r in self.rules
            ],
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
        }


def iter_python_files(root: Path, paths) -> list[Path]:
    """Resolve lint targets to a sorted, de-duplicated list of .py files."""
    seen: dict[Path, None] = {}
    for spec in paths:
        target = (root / spec) if not Path(spec).is_absolute() else Path(spec)
        if target.is_file() and target.suffix == ".py":
            seen.setdefault(target.resolve(), None)
        elif target.is_dir():
            for path in sorted(target.rglob("*.py")):
                seen.setdefault(path.resolve(), None)
        else:
            raise FileNotFoundError(f"lint target {spec!r} does not exist under {root}")
    return list(seen)


def parse_pragmas(source: str) -> dict[int, set[str]]:
    """Per-line disabled rule tokens (ids, slugs, or ``all``)."""
    pragmas: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(line)
        if match:
            tokens = {
                token.strip()
                for token in match.group("rules").split(",")
                if token.strip()
            }
            if tokens:
                pragmas[lineno] = tokens
    return pragmas


def default_baseline_path(root: Path) -> Path:
    return root / "tools" / "lint" / "baseline.json"


def load_baseline(path: Path) -> list[dict]:
    """Baseline entries (possibly empty); a missing file is an empty baseline."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text())
    entries = data.get("findings", []) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} must hold a list of findings")
    return entries


def save_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "version": 1,
        "comment": (
            "Grandfathered repro-lint findings. The target state is an "
            "empty list: fix violations, don't baseline them."
        ),
        "findings": [f.to_dict() for f in findings],
    }
    path.write_text(json.dumps(payload, indent=2, ensure_ascii=False) + "\n")


def run_lint(
    root,
    paths=None,
    rules: list[Rule] | None = None,
    baseline_path=None,
) -> LintResult:
    """Lint *paths* under *root* with *rules* (default: all registered)."""
    root = Path(root).resolve()
    rule_objs = list(rules) if rules is not None else all_rules()
    files = iter_python_files(root, paths or DEFAULT_PATHS)
    file_rules = [r for r in rule_objs if r.scope == "file"]
    repo_rules = [r for r in rule_objs if r.scope == "repo"]

    raw: list[Finding] = []
    pragma_maps: dict[str, dict[int, set[str]]] = {}
    for path in files:
        rel = path.relative_to(root).as_posix()
        source = path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    "E0",
                    "parse-error",
                    rel,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        ctx = FileContext(root, path, source, tree)
        pragma_maps[rel] = parse_pragmas(source)
        for rule in file_rules:
            if rule.applies_to(rel):
                raw.extend(rule.check_file(ctx))
    if repo_rules:
        rctx = RepoContext(root, files)
        for rule in repo_rules:
            raw.extend(rule.check_repo(rctx))

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        tokens = pragma_maps.get(finding.path, {}).get(finding.line, set())
        if finding.rule != "E0" and (
            "all" in tokens or finding.rule in tokens or finding.name in tokens
        ):
            suppressed.append(finding)
        else:
            active.append(finding)

    baseline_file = (
        Path(baseline_path) if baseline_path is not None else default_baseline_path(root)
    )
    entries = load_baseline(baseline_file)
    remaining: dict[tuple, int] = {}
    for entry in entries:
        key = (entry.get("rule"), entry.get("path"), entry.get("message"))
        remaining[key] = remaining.get(key, 0) + 1
    findings: list[Finding] = []
    baselined: list[Finding] = []
    for finding in active:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            findings.append(finding)
    stale = [
        {"rule": key[0], "path": key[1], "message": key[2], "count": count}
        for key, count in remaining.items()
        if count > 0
    ]

    return LintResult(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        files_checked=len(files),
        rules=rule_objs,
        stale_baseline=stale,
    )
