"""Object model of the ``repro lint`` framework.

A :class:`Rule` inspects source (usually its :mod:`ast`) and yields
:class:`Finding`s.  Rules come in two scopes:

* ``"file"`` — :meth:`Rule.check_file` runs once per linted Python
  file with a parsed :class:`FileContext`;
* ``"repo"`` — :meth:`Rule.check_repo` runs once per lint invocation
  with a :class:`RepoContext` (for checks that span files, like the
  doc-marker and public-API rules).

Everything here is purely syntactic: no file under lint is imported,
so the linter runs on any interpreter with nothing but the stdlib —
including hosts where numba/numpy extras are absent.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path


@dataclasses.dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location."""

    rule: str  #: stable rule id (``"R1"`` … ``"R7"``, ``"E0"`` for parse errors)
    name: str  #: rule slug, e.g. ``"rng-discipline"``
    path: str  #: repo-relative posix path
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    message: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, (rule, path, message) don't."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}[{self.name}] {self.message}"


class FileContext:
    """One parsed Python file under lint."""

    def __init__(self, root: Path, path: Path, source: str, tree: ast.Module) -> None:
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree


class RepoContext:
    """The whole lint invocation, for repo-scoped rules."""

    def __init__(self, root: Path, files: list[Path]) -> None:
        self.root = root
        self.files = list(files)


class Rule:
    """Base class for lint rules; subclass, set the metadata, register.

    New rules plug in the way algorithms do in the engine registry::

        from tools.lint.base import Rule
        from tools.lint.rules import register_rule

        @register_rule
        class MyRule(Rule):
            id = "R8"
            name = "my-invariant"
            description = "one-line summary shown by --list-rules"

            def check_file(self, ctx):
                yield self.finding(ctx, node, "message")
    """

    id: str = ""
    name: str = ""
    description: str = ""
    scope: str = "file"  #: ``"file"`` or ``"repo"``
    #: repo-relative posix suffixes this rule never applies to.
    exempt_suffixes: tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        return not any(rel.endswith(suffix) for suffix in self.exempt_suffixes)

    def finding(self, ctx: FileContext, node: ast.AST | int, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node* (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
        return Finding(self.id, self.name, ctx.rel, line, col, message)

    def repo_finding(self, rel: str, line: int, message: str) -> Finding:
        return Finding(self.id, self.name, rel, line, 0, message)

    def check_file(self, ctx: FileContext):
        return ()

    def check_repo(self, ctx: RepoContext):
        return ()


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Canonicalizes local names through a module's import statements.

    ``import numpy as np`` makes ``np.random.default_rng`` canonicalize
    to ``numpy.random.default_rng``; ``from multiprocessing import
    shared_memory`` makes ``shared_memory.SharedMemory`` canonicalize to
    ``multiprocessing.shared_memory.SharedMemory``.  Names with no
    import binding canonicalize to ``None`` — classification is opt-in,
    so a local variable that happens to be called ``random`` never
    trips an RNG rule.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted path of a Name/Attribute chain, or ``None``."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base
