"""R5 — iteration-order determinism: never iterate an unordered set.

Set iteration order depends on insertion history and (for str keys) the
per-process hash seed; any ``for``/comprehension over a set that feeds
sampling, allocation argmaxes, or manifest-row order is a latent
nondeterminism bug even when today's tie-breaks happen to mask it.
Iterating ``dict.keys()`` is flagged too — views signal set-like usage,
and making the order explicit (the dict itself is insertion-ordered, or
``sorted(...)``) keeps the contract auditable.

``sorted(<set>)`` is the sanctioned spelling and never flagged;
``list``/``tuple``/``enumerate``/``reversed``/``iter`` wrappers are
transparent (they preserve whatever order the set hands them).

Comprehensions consumed by an order-insensitive reducer —
``set``/``frozenset``/``len``/``any``/``all``/``min``/``max``/``sorted``
— are exempt, as are set comprehensions themselves: the result forgets
the iteration order.  ``sum`` is deliberately NOT exempt; float addition
is not associative, so reordering changes bits.
"""

from __future__ import annotations

import ast

from tools.lint.base import FileContext, Rule
from tools.lint.rules import register_rule

SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})
#: Consumers whose result is independent of input order (note: not `sum` —
#: float addition is order-sensitive at the bit level).
ORDER_INSENSITIVE_REDUCERS = frozenset(
    {"set", "frozenset", "len", "any", "all", "min", "max", "sorted"}
)
SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _set_assignments(scope: ast.AST) -> set[str]:
    """Names bound (anywhere in *scope*) to a set-producing expression."""
    names: set[str] = set()

    def value_of(stmt):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
            return stmt.value
        return None

    changed = True
    while changed:  # fixpoint so `a = set(); b = a | other` resolves
        changed = False
        for stmt in ast.walk(scope):
            value = value_of(stmt)
            if value is None or not _is_set_expr(value, names):
                continue
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in names:
                    names.add(target.id)
                    changed = True
    return names


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SET_METHODS
            and _is_set_expr(node.func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, SET_OPS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _unwrap(node: ast.expr) -> ast.expr | None:
    """Peel transparent wrappers; ``None`` when order is made explicit."""
    while isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "sorted":
            return None  # sorted(...) fixes the order — sanctioned
        if node.func.id in TRANSPARENT_WRAPPERS and node.args:
            node = node.args[0]
            continue
        break
    return node


@register_rule
class IterationDeterminismRule(Rule):
    id = "R5"
    name = "iter-determinism"
    description = (
        "no iteration over sets (or dict.keys()) where order can leak "
        "into results — iterate sorted(...) or an ordered container"
    )

    def check_file(self, ctx: FileContext):
        # Scope set-name tracking per function (plus module scope) so a
        # module-level `FOO = set(...)` doesn't taint unrelated locals.
        scopes = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in [ctx.tree] + scopes:
            set_names = _set_assignments(scope)
            for node in self._direct_children_iterations(scope):
                target = _unwrap(node)
                if target is None:
                    continue
                if _is_set_expr(target, set_names):
                    yield self.finding(ctx, target, (
                        "iteration over an unordered set — its order can "
                        "leak into sampling/allocation/manifest order; "
                        "iterate sorted(...) instead"
                    ))
                elif _is_keys_call(target):
                    yield self.finding(ctx, target, (
                        "iteration over dict.keys() — iterate the dict "
                        "itself (insertion-ordered) or sorted(...) to make "
                        "the order explicit"
                    ))

    def _direct_children_iterations(self, scope: ast.AST):
        """Iteration expressions belonging to *scope* (not nested functions).

        ``ast.walk`` cannot skip subtrees, so this walks an explicit
        stack and prunes nested function bodies (they get their own
        scope pass).
        """
        exempt: set[ast.AST] = set()
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ORDER_INSENSITIVE_REDUCERS
            ):
                # e.g. frozenset(int(s) for s in seeds): the reducer
                # forgets input order, so the comprehension is exempt.
                for arg in node.args:
                    if isinstance(
                        arg, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
                    ):
                        exempt.add(arg)
            if isinstance(node, ast.For):
                yield node.iter
            elif isinstance(node, ast.SetComp):
                pass  # result is a set — iteration order cannot escape
            elif isinstance(
                node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
            ):
                if node not in exempt:
                    for comp in node.generators:
                        yield comp.iter
            stack.extend(ast.iter_child_nodes(node))
