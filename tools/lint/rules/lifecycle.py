"""R3 — resource lifecycle: shm/memmap/tempfile/socket handles must be paired.

``SharedMemory`` segments, spill-file ``np.memmap``s, tempfiles — and,
since the serving layer, raw sockets and stdlib HTTP/TCP servers — are
the resources PR 6/7 taught this repo to reap after crashes; a creation
site with no statically visible release is a leak waiting for the next
refactor.  A creation call is accepted when any of these holds:

* it is the context expression of a ``with`` statement;
* it is directly ``return``-ed (a factory — the caller owns it);
* the enclosing function registers a ``weakref.finalize`` backstop;
* the enclosing function pairs it in a ``try/finally`` whose finally
  block calls ``.close()``/``.unlink()``/``os.close``/``os.unlink``;
* it happens in a method of a class that defines ``close``,
  ``__exit__`` or ``__del__`` (instance-owned; sessions/pools close it);
* for ``tempfile.mkstemp``, the enclosing function calls ``os.close``
  (the fd is closed immediately; the path needs one of the above).

Everything else is flagged.
"""

from __future__ import annotations

import ast

from tools.lint.base import FileContext, ImportMap, Rule
from tools.lint.rules import register_rule

#: Canonical callables that create a lifecycle-managed resource.
CREATORS = {
    "multiprocessing.shared_memory.SharedMemory": "SharedMemory segment",
    "numpy.memmap": "np.memmap mapping",
    "tempfile.NamedTemporaryFile": "NamedTemporaryFile",
    "tempfile.mkstemp": "mkstemp temp file",
    "tempfile.TemporaryFile": "TemporaryFile",
    # Serving-layer resources: a leaked listener keeps the port bound
    # (and its accept threads alive) long after the daemon "stopped".
    "socket.socket": "socket",
    "socket.create_connection": "socket connection",
    "http.server.HTTPServer": "HTTPServer listener",
    "http.server.ThreadingHTTPServer": "ThreadingHTTPServer listener",
    "socketserver.TCPServer": "TCPServer listener",
    "socketserver.ThreadingTCPServer": "ThreadingTCPServer listener",
}

RELEASE_ATTRS = frozenset(
    {"close", "unlink", "terminate", "shutdown", "cleanup", "server_close"}
)
RELEASE_CANONICAL = frozenset({"os.close", "os.unlink", "os.remove"})


def _build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _ancestors(node: ast.AST, parents: dict) -> list[ast.AST]:
    chain = []
    while node in parents:
        node = parents[node]
        chain.append(node)
    return chain


def _is_release_call(node: ast.AST, imports: ImportMap) -> bool:
    if not isinstance(node, ast.Call):
        return False
    canonical = imports.canonical(node.func)
    if canonical in RELEASE_CANONICAL:
        return True
    return isinstance(node.func, ast.Attribute) and node.func.attr in RELEASE_ATTRS


def _contains_release(body: list[ast.stmt], imports: ImportMap) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if _is_release_call(node, imports):
                return True
    return False


def _calls_weakref_finalize(scope: ast.AST, imports: ImportMap) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            canonical = imports.canonical(node.func)
            if canonical == "weakref.finalize":
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr == "finalize":
                return True
    return False


def _calls_os_close(scope: ast.AST, imports: ImportMap) -> bool:
    return any(
        isinstance(node, ast.Call) and imports.canonical(node.func) == "os.close"
        for node in ast.walk(scope)
    )


@register_rule
class ResourceLifecycleRule(Rule):
    id = "R3"
    name = "resource-lifecycle"
    description = (
        "SharedMemory/np.memmap/tempfile creations need a paired "
        "close/unlink (with, try/finally, owning-class close, or "
        "weakref.finalize backstop)"
    )

    def check_file(self, ctx: FileContext):
        imports = ImportMap(ctx.tree)
        parents = _build_parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.canonical(node.func)
            if canonical not in CREATORS:
                continue
            if self._is_managed(node, canonical, parents, imports):
                continue
            yield self.finding(ctx, node, (
                f"{CREATORS[canonical]} created without a statically visible "
                "release — use a context manager, pair close/unlink in a "
                "finally block, hand it to an owning class with close(), or "
                "register a weakref.finalize backstop"
            ))

    def _is_managed(self, node, canonical, parents, imports: ImportMap) -> bool:
        chain = _ancestors(node, parents)
        # 1. context expression of a `with` item.
        for ancestor in chain:
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if node is item.context_expr or any(
                        sub is node for sub in ast.walk(item.context_expr)
                    ):
                        return True
        # 2. directly returned: the nearest statement is a Return.
        for ancestor in chain:
            if isinstance(ancestor, ast.stmt):
                if isinstance(ancestor, ast.Return):
                    return True
                break
        fn = next(
            (a for a in chain if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))),
            None,
        )
        cls = next((a for a in chain if isinstance(a, ast.ClassDef)), None)
        if fn is not None:
            # 3. weakref.finalize backstop in the same function.
            if _calls_weakref_finalize(fn, imports):
                return True
            # 4. try/finally release in the same function.
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Try) and sub.finalbody:
                    if _contains_release(sub.finalbody, imports):
                        return True
            # 5. mkstemp: fd closed via os.close in the same function
            #    (the path side still needs 3/4/6 — mkstemp callers in this
            #    repo pair os.close with a finalize; requiring os.close
            #    keeps the fd from leaking silently).
            if canonical == "tempfile.mkstemp" and _calls_os_close(fn, imports):
                return True
        # 6. instance-owned: a method of a class that can release it.
        if cls is not None and fn is not None:
            for member in cls.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if member.name in ("close", "__exit__", "__del__"):
                        return True
            if _calls_weakref_finalize(cls, imports):
                return True
        return False
