"""R6 — doc staleness markers point at live code (ex ``check_doc_markers.py``).

Markdown files under ``docs/`` (plus the top-level ``README.md``) tie
sections to code with HTML-comment markers::

    <!-- staleness-marker: src/repro/rrset/sampler.py:RRSampler.sample_batch_flat -->

Formats accepted after the path:

* ``path`` — the file must exist;
* ``path:function`` — a module-level function (or class) of that name;
* ``path:Class.method`` — a method (or nested class / class-level
  assignment) inside the class.

Resolution is purely syntactic (``ast``).  The contract documents
(``docs/ARCHITECTURE.md``, ``docs/EXPERIMENTS.md``) must also contain
at least one marker each when present — a wholesale deletion should
fail loudly, not pass vacuously.

``tools/check_doc_markers.py`` remains as a shim over :func:`main`.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

from tools.lint.base import RepoContext, Rule
from tools.lint.rules import register_rule

MARKER_RE = re.compile(r"<!--\s*staleness-marker:\s*(?P<target>[^\s]+)\s*-->")


def iter_marker_files(root: Path):
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))
    readme = root / "README.md"
    if readme.is_file():
        yield readme


def find_markers(path: Path) -> list[tuple[int, str]]:
    """All ``(line_number, target)`` markers in one markdown file."""
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in MARKER_RE.finditer(line):
            out.append((lineno, match.group("target")))
    return out


def _top_level_names(tree: ast.Module) -> dict[str, ast.AST]:
    names: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names[node.name] = node
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names[tgt.id] = node
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names[node.target.id] = node
    return names


def _class_members(cls: ast.ClassDef) -> set[str]:
    members: set[str] = set()
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            members.add(node.name)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    members.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            members.add(node.target.id)
    return members


def resolve(root: Path, target: str) -> str | None:
    """Return an error string, or ``None`` when *target* resolves."""
    path_part, _, symbol = target.partition(":")
    file_path = root / path_part
    if not file_path.is_file():
        return f"file {path_part!r} does not exist"
    if not symbol:
        return None
    if not path_part.endswith(".py"):
        return f"symbol lookup requires a .py file, got {path_part!r}"
    try:
        tree = ast.parse(file_path.read_text())
    except SyntaxError as exc:
        return f"cannot parse {path_part!r}: {exc}"
    names = _top_level_names(tree)
    head, _, tail = symbol.partition(".")
    if head not in names:
        return f"{path_part!r} has no top-level symbol {head!r}"
    if not tail:
        return None
    cls = names[head]
    if not isinstance(cls, ast.ClassDef):
        return f"{head!r} in {path_part!r} is not a class (cannot hold {tail!r})"
    if tail not in _class_members(cls):
        return f"class {head!r} in {path_part!r} has no member {tail!r}"
    return None


def check_root(root: Path) -> list[tuple[str, int, str]]:
    """All failures as ``(relative_md_path, line, message)`` tuples."""
    failures: list[tuple[str, int, str]] = []
    for md in iter_marker_files(root):
        rel = md.relative_to(root).as_posix()
        for lineno, target in find_markers(md):
            error = resolve(root, target)
            if error is not None:
                failures.append((rel, lineno, f"{target} — {error}"))
    for name in ("ARCHITECTURE.md", "EXPERIMENTS.md"):
        doc = root / "docs" / name
        if doc.is_file() and not find_markers(doc):
            failures.append(
                (
                    f"docs/{name}",
                    1,
                    "contains no staleness markers (sections must stay tied to code)",
                )
            )
    return failures


@register_rule
class DocMarkersRule(Rule):
    id = "R6"
    name = "doc-markers"
    description = "documentation staleness markers must resolve to live code"
    scope = "repo"

    def check_repo(self, ctx: RepoContext):
        for rel, lineno, message in check_root(ctx.root):
            yield self.repo_finding(rel, lineno, message)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point preserving the pre-lint script's contract."""
    argv = sys.argv[1:] if argv is None else argv
    root = (
        Path(argv[0]).resolve()
        if argv
        else Path(__file__).resolve().parents[3]
    )
    failures = check_root(root)
    if failures:
        print(f"{len(failures)} stale doc marker(s):")
        for rel, lineno, message in failures:
            print(f"  {rel}:{lineno}: {message}")
        return 1
    total = sum(len(find_markers(md)) for md in iter_marker_files(root))
    print(f"all {total} doc markers resolve")
    return 0
