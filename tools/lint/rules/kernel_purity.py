"""R2 — kernel purity: ``@njit`` functions stay numeric and RNG-free.

The numpy↔numba bit-identity contract (docs/ARCHITECTURE.md §2.1)
holds because every stochastic step stays in the Python driver and the
compiled helpers are pure numeric loops.  This rule makes that
checkable without numba installed: a function decorated ``@njit`` (or
``@numba.njit`` / ``@jit``, bare or parameterized) may not

* draw randomness (any R1 entropy call, ``as_generator``, or a
  Generator method like ``rng.random(...)``),
* allocate Python containers inside a loop (list/dict/set literals,
  comprehensions, or ``list()``/``dict()``/``set()`` calls — each
  iteration would box through the interpreter or fall off numba's
  fast path), or
* read globals other than imported modules (``np``/``numpy``/``math``),
  whitelisted builtins, or module-level *numeric* constants — the only
  globals numba freezes safely.
"""

from __future__ import annotations

import ast

from tools.lint.base import FileContext, ImportMap, Rule
from tools.lint.rules import register_rule
from tools.lint.rules.rng import entropy_calls

#: Builtins a compiled kernel may reference.
ALLOWED_BUILTINS = frozenset(
    {"range", "len", "min", "max", "abs", "int", "float", "bool", "round", "divmod", "enumerate", "zip"}
)

#: Module roots a compiled kernel may reference.
ALLOWED_MODULES = frozenset({"np", "numpy", "math", "nb", "numba"})

#: numpy.random.Generator draw methods (kernels must not hold a Generator).
GENERATOR_METHODS = frozenset(
    {"random", "integers", "choice", "shuffle", "permutation", "normal", "uniform", "standard_normal"}
)


def _body_walk(fn: ast.FunctionDef):
    """Walk the function *body* only — decorators and defaults are the
    enclosing scope's business (``@njit(cache=True)`` must not flag
    ``njit`` as a global read of the kernel)."""
    for stmt in fn.body:
        yield from ast.walk(stmt)


def _is_jit_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id in ("njit", "jit")
    if isinstance(target, ast.Attribute):
        return target.attr in ("njit", "jit")
    return False


def jit_functions(tree: ast.AST):
    """Every function in *tree* decorated with a JIT decorator."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(_is_jit_decorator(dec) for dec in node.decorator_list):
                yield node


def _local_names(fn: ast.FunctionDef) -> set[str]:
    """Parameters plus every name the function binds itself."""
    args = fn.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for node in _body_walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _numeric_constant_names(tree: ast.Module) -> set[str]:
    """Module-level names bound to numeric-literal expressions."""

    def numeric(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (int, float, complex, bool))
        if isinstance(expr, ast.UnaryOp):
            return numeric(expr.operand)
        if isinstance(expr, ast.BinOp):
            return numeric(expr.left) and numeric(expr.right)
        return False

    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and numeric(node.value):
            names.update(t.id for t in node.targets if isinstance(t, ast.Name))
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.value is not None
            and numeric(node.value)
        ):
            names.add(node.target.id)
    return names


@register_rule
class KernelPurityRule(Rule):
    id = "R2"
    name = "kernel-purity"
    description = (
        "@njit functions may not draw RNG, allocate Python containers in "
        "loops, or read non-numeric globals"
    )

    def check_file(self, ctx: FileContext):
        imports = ImportMap(ctx.tree)
        allowed_globals = (
            ALLOWED_BUILTINS | ALLOWED_MODULES | _numeric_constant_names(ctx.tree)
        )
        for fn in jit_functions(ctx.tree):
            yield from self._check_rng(ctx, fn, imports)
            yield from self._check_loop_containers(ctx, fn)
            yield from self._check_globals(ctx, fn, allowed_globals)

    # -- RNG -----------------------------------------------------------
    def _check_rng(self, ctx: FileContext, fn, imports: ImportMap):
        body = ast.Module(body=list(fn.body), type_ignores=[])
        for node, _ in entropy_calls(body, imports):
            yield self.finding(ctx, node, (
                f"@njit kernel {fn.name!r} draws randomness — RNG draws must "
                "stay in the Python driver so numpy and numba consume the "
                "identical stream"
            ))
        for node in _body_walk(fn):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.canonical(node.func)
            if canonical is not None and canonical.endswith("as_generator"):
                yield self.finding(ctx, node, (
                    f"@njit kernel {fn.name!r} constructs a Generator via "
                    "as_generator — kernels must be deterministic in their inputs"
                ))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in GENERATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and imports.canonical(node.func) is None
            ):
                yield self.finding(ctx, node, (
                    f"@njit kernel {fn.name!r} calls "
                    f".{node.func.attr}() on {node.func.value.id!r} — looks "
                    "like a Generator draw; RNG must stay in the Python driver"
                ))

    # -- containers in loops -------------------------------------------
    def _check_loop_containers(self, ctx: FileContext, fn):
        seen: set[ast.AST] = set()
        for loop in _body_walk(fn):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if node is loop or node in seen:
                    continue
                bad = None
                if isinstance(node, (ast.List, ast.Dict, ast.Set)):
                    bad = type(node).__name__.lower() + " literal"
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                    bad = "comprehension"
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id in ("list", "dict", "set"):
                        bad = f"{node.func.id}() call"
                if bad is not None:
                    seen.add(node)
                    yield self.finding(ctx, node, (
                        f"@njit kernel {fn.name!r} allocates a Python "
                        f"container in a loop ({bad}) — preallocate numpy "
                        "buffers outside the loop"
                    ))

    # -- globals -------------------------------------------------------
    def _check_globals(self, ctx: FileContext, fn, allowed: set[str]):
        local = _local_names(fn)
        reported: set[str] = set()
        for node in _body_walk(fn):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            name = node.id
            if name in local or name in allowed or name in reported:
                continue
            reported.add(name)
            yield self.finding(ctx, node, (
                f"@njit kernel {fn.name!r} reads global {name!r} — kernels "
                "may only touch parameters, numpy/math, and module-level "
                "numeric constants"
            ))
