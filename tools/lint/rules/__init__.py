"""Rule registry: rules plug in like algorithms in the engine registry.

``@register_rule`` on a :class:`tools.lint.base.Rule` subclass makes it
part of every lint run; :func:`all_rules` returns the registered rules
in id order and :func:`resolve_rules` maps a ``--rules`` selector
(comma-separated ids or slugs) onto them.  The built-in contract rules
R1–R7 register themselves when this package is imported.
"""

from __future__ import annotations

from tools.lint.base import Rule

_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule (id/name unique)."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must set a non-empty id and name")
    for existing in _REGISTRY.values():
        if existing.id == rule.id or existing.name == rule.name:
            raise ValueError(
                f"rule id/name collision: {rule.id}[{rule.name}] vs "
                f"{existing.id}[{existing.name}]"
            )
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def resolve_rules(selector: str | None) -> list[Rule]:
    """Rules for a ``--rules`` selector (ids or slugs, comma-separated)."""
    if not selector:
        return all_rules()
    by_token = {rule.id: rule for rule in _REGISTRY.values()}
    by_token.update({rule.name: rule for rule in _REGISTRY.values()})
    chosen: list[Rule] = []
    for token in (t.strip() for t in selector.split(",")):
        if not token:
            continue
        if token not in by_token:
            known = ", ".join(sorted(by_token))
            raise ValueError(f"unknown rule {token!r}; known: {known}")
        if by_token[token] not in chosen:
            chosen.append(by_token[token])
    return sorted(chosen, key=lambda rule: rule.id)


# Built-in contract rules register on import (after register_rule exists).
from tools.lint.rules import rng  # noqa: E402,F401
from tools.lint.rules import kernel_purity  # noqa: E402,F401
from tools.lint.rules import lifecycle  # noqa: E402,F401
from tools.lint.rules import payload  # noqa: E402,F401
from tools.lint.rules import iteration  # noqa: E402,F401
from tools.lint.rules import doc_markers  # noqa: E402,F401
from tools.lint.rules import public_api  # noqa: E402,F401
