"""R7 — public-API surface honesty (ex ``check_public_api.py``).

Two layers, each historically easy to break:

1. **Static (always runs):** ``src/repro/__init__.py`` is parsed with
   ``ast`` — every name in ``__all__`` must be bound somewhere in the
   module (an import, def, class or assignment), and the unified-solver
   contract names (``solve``, ``EngineSpec``, ``AllocationSession``,
   the registry functions) must appear in ``__all__``.
2. **Dynamic (runs when importable):** every committed ``specs/*.json``
   must survive the ``EngineSpec`` JSON round-trip unchanged — grid
   specs are compiled through their config block first, exactly the
   path the grid runner takes.  This layer is skipped when ``repro``
   cannot be imported from ``<root>/src`` (e.g. linting a scratch tree
   while a different checkout's ``repro`` is loaded), so the linter
   itself never needs numpy.

``tools/check_public_api.py`` remains as a shim over :func:`main`.
"""

from __future__ import annotations

import ast
import json
import sys
from pathlib import Path

from tools.lint.base import RepoContext, Rule
from tools.lint.rules import register_rule

#: Unified-solver names that must stay in repro.__all__ (ARCHITECTURE §9).
API_CONTRACT = (
    "solve",
    "EngineSpec",
    "AllocationSession",
    "AlgorithmDef",
    "register_algorithm",
    "unregister_algorithm",
    "algorithm_names",
    "get_algorithm",
)


def _bound_names(tree: ast.Module) -> set[str]:
    """Every name the module binds, at any nesting (try/except branches too)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _all_entries(tree: ast.Module):
    """``(lineno, [names])`` for every ``__all__`` assignment/extension."""
    for node in ast.walk(tree):
        values = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            values = node.value
        elif (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            values = node.value
        if values is not None and isinstance(values, (ast.List, ast.Tuple)):
            names = [
                elt.value
                for elt in values.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            yield node.lineno, names


def check_static(root: Path) -> list[tuple[str, int, str]]:
    """AST-level ``__all__`` checks; ``(rel_path, line, message)`` failures."""
    init = root / "src" / "repro" / "__init__.py"
    if not init.is_file():
        return []
    rel = init.relative_to(root).as_posix()
    try:
        tree = ast.parse(init.read_text())
    except SyntaxError as exc:
        return [(rel, exc.lineno or 1, f"cannot parse: {exc.msg}")]
    failures: list[tuple[str, int, str]] = []
    entries = list(_all_entries(tree))
    if not entries:
        return [(rel, 1, "no __all__ export list found")]
    bound = _bound_names(tree)
    advertised: list[str] = []
    for lineno, names in entries:
        advertised.extend(names)
        for name in names:
            if name not in bound:
                failures.append(
                    (rel, lineno, f"__all__ advertises unbound name {name!r}")
                )
    for name in API_CONTRACT:
        if name not in advertised:
            failures.append(
                (
                    rel,
                    entries[0][0],
                    f"unified-API name {name!r} missing from __all__",
                )
            )
    return failures


def check_spec_round_trips(root: Path) -> tuple[list[tuple[str, int, str]], int]:
    """Dynamic spec round-trip checks; skipped when repro is not importable.

    Returns ``(failures, specs_checked)``; ``specs_checked`` is -1 when
    the dynamic layer was skipped.
    """
    if not (root / "src" / "repro" / "__init__.py").is_file():
        return [], -1
    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    try:
        import repro
    except Exception:
        return [], -1
    # A different checkout's repro being loaded must not validate this
    # root's specs against the wrong code.
    if Path(repro.__file__).resolve().parents[1] != (root / "src").resolve():
        return [], -1
    try:
        from repro.api.spec import EngineSpec
        from repro.experiments.grid import GridSpec
    except Exception as exc:
        return [
            (
                "src/repro",
                1,
                f"unified-API modules not importable from this tree — {exc}",
            )
        ], 0

    failures: list[tuple[str, int, str]] = []
    spec_files = sorted((root / "specs").glob("*.json"))
    if not spec_files:
        return [
            ("specs", 1, "specs/ holds no JSON files (committed specs deleted?)")
        ], 0
    for path in spec_files:
        rel = path.relative_to(root).as_posix()
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append((rel, 1, f"unreadable JSON — {exc}"))
            continue
        try:
            if isinstance(data, dict) and "datasets" in data:
                grid = GridSpec.from_dict(data)
                # opt_lower needs a dataset at run time; any valid bound
                # exercises the same round-trip machinery.
                engine = grid.experiment_config().engine_spec(opt_lower=1.0)
            else:
                engine = EngineSpec.from_dict(data)
        except Exception as exc:
            failures.append((rel, 1, f"does not compile to an EngineSpec — {exc}"))
            continue
        encoded = json.loads(json.dumps(engine.to_dict()))
        if EngineSpec.from_dict(encoded) != engine:
            failures.append((rel, 1, "EngineSpec JSON round-trip is not the identity"))
    return failures, len(spec_files)


@register_rule
class PublicApiRule(Rule):
    id = "R7"
    name = "public-api"
    description = (
        "repro.__all__ must be honest, the unified-solver names exported, "
        "and committed specs must round-trip through EngineSpec"
    )
    scope = "repo"

    def check_repo(self, ctx: RepoContext):
        for rel, lineno, message in check_static(ctx.root):
            yield self.repo_finding(rel, lineno, message)
        failures, _ = check_spec_round_trips(ctx.root)
        for rel, lineno, message in failures:
            yield self.repo_finding(rel, lineno, message)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point preserving the pre-lint script's contract."""
    argv = sys.argv[1:] if argv is None else argv
    root = (
        Path(argv[0]).resolve()
        if argv
        else Path(__file__).resolve().parents[3]
    )
    failures = check_static(root)
    dynamic_failures, specs = check_spec_round_trips(root)
    failures += dynamic_failures
    if failures:
        print(f"{len(failures)} public-API check failure(s):")
        for rel, lineno, message in failures:
            print(f"  {rel}:{lineno}: {message}")
        return 1
    suffix = (
        f"{specs} committed spec(s) round-trip through EngineSpec"
        if specs >= 0
        else "spec round-trip skipped (repro not importable)"
    )
    print(f"public API ok: __all__ names resolve, {suffix}")
    return 0
