"""R1 — RNG discipline: every random stream routes through ``repro._rng``.

The reproducibility contract (docs/ARCHITECTURE.md §2) is that a run's
entire stochastic behavior derives from one seed threaded through
:func:`repro._rng.as_generator`.  Any other entropy source — the numpy
legacy global state, ``np.random.default_rng`` constructed ad hoc, the
stdlib :mod:`random` module, ``os.urandom``, a zero-entropy
``SeedSequence()``, or a wall-clock-derived seed — silently breaks
bit-identical replay, so all of them are banned outside ``_rng.py``
itself.
"""

from __future__ import annotations

import ast

from tools.lint.base import FileContext, ImportMap, Rule
from tools.lint.rules import register_rule

#: numpy.random legacy/global-state entry points that bypass Generator
#: streams entirely (np.random.seed, np.random.rand, …).  Any lowercase
#: attribute call on numpy.random is flagged; these get a sharper message.
NUMPY_RANDOM_ALLOWED = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "SFC64", "MT19937"})

#: Wall-clock / OS entropy callables that must never feed a seed.
ENTROPY_SOURCES = frozenset({"time.time", "time.time_ns", "os.urandom", "uuid.uuid4"})


def entropy_calls(tree: ast.AST, imports: ImportMap):
    """Yield ``(node, message)`` for every banned entropy construction.

    Shared with the kernel-purity rule (R2), which applies the same
    classification inside ``@njit`` bodies.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        canonical = imports.canonical(node.func)
        if canonical is None:
            continue
        if canonical == "numpy.random.default_rng":
            yield node, (
                "np.random.default_rng outside repro._rng — thread the "
                "seed/rng through repro._rng.as_generator instead"
            )
        elif canonical == "numpy.random.SeedSequence":
            if not node.args and not node.keywords:
                yield node, (
                    "np.random.SeedSequence() with no entropy draws OS "
                    "entropy — pass explicit entropy for a replayable stream"
                )
            elif _mentions_entropy_source(node, imports):
                yield node, (
                    "wall-clock/OS entropy seeds a SeedSequence — pass an "
                    "explicit seed"
                )
        elif canonical.startswith("numpy.random."):
            tail = canonical.rsplit(".", 1)[1]
            if tail not in NUMPY_RANDOM_ALLOWED:
                yield node, (
                    f"legacy global-state RNG np.random.{tail} — draw from a "
                    "seeded Generator (repro._rng.as_generator) instead"
                )
        elif canonical == "random" or canonical.startswith("random."):
            yield node, (
                f"stdlib random call {canonical!r} — the random module is "
                "banned; draw from a seeded Generator (repro._rng.as_generator)"
            )
        elif canonical in ("os.urandom", "uuid.uuid4"):
            yield node, (
                f"{canonical} is unseeded OS entropy — derive randomness "
                "from a seeded Generator (repro._rng.as_generator)"
            )
        elif canonical.endswith("_rng.as_generator") or canonical == "repro._rng.as_generator":
            if _mentions_entropy_source(node, imports):
                yield node, (
                    "wall-clock/OS entropy passed to as_generator — pass an "
                    "explicit seed so runs replay bit-identically"
                )


def _mentions_entropy_source(call: ast.Call, imports: ImportMap) -> bool:
    """True when any argument subtree calls a wall-clock/OS entropy source."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Call):
                canonical = imports.canonical(sub.func)
                if canonical in ENTROPY_SOURCES:
                    return True
    return False


@register_rule
class RngDisciplineRule(Rule):
    id = "R1"
    name = "rng-discipline"
    description = (
        "all RNG streams must route through repro._rng.as_generator; no "
        "default_rng/legacy np.random/stdlib random/os.urandom/time seeds "
        "outside _rng.py"
    )
    exempt_suffixes = ("repro/_rng.py",)

    def check_file(self, ctx: FileContext):
        if not self.applies_to(ctx.rel):
            return
        imports = ImportMap(ctx.tree)
        # Importing the stdlib random module is itself a finding: there is
        # no sanctioned use, and flagging the import catches dead seams.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(ctx, node, (
                            "import of the stdlib random module — use "
                            "repro._rng.as_generator streams"
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.finding(ctx, node, (
                        "import from the stdlib random module — use "
                        "repro._rng.as_generator streams"
                    ))
        for node, message in entropy_calls(ctx.tree, imports):
            yield self.finding(ctx, node, message)
