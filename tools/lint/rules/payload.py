"""R4 — worker-payload safety: only module-level callables cross processes.

``SharedGraphPool`` workers and ``multiprocessing`` entry points receive
their payload by pickling (spawn) or rely on it existing identically in
every child (fork).  Lambdas don't pickle, closures capture parent-only
state, and bound methods drag their whole instance across the boundary
— all three have bitten fork-pools before and silently break under the
spawn start method.  This rule flags them at the submission site:
``Process(target=...)``, pool ``submit``/``apply_async``/``map``-family
calls, and ``SharedGraphPool`` construction.
"""

from __future__ import annotations

import ast

from tools.lint.base import FileContext, ImportMap, Rule, dotted_name
from tools.lint.rules import register_rule

#: Pool/executor methods whose first positional (or func=) argument is a
#: callable shipped to another process.
SUBMIT_ATTRS = frozenset(
    {
        "submit",
        "apply",
        "apply_async",
        "map_async",
        "starmap",
        "starmap_async",
        "imap",
        "imap_unordered",
    }
)


def _nested_function_names(tree: ast.AST) -> dict[ast.AST, set[str]]:
    """For every function node, names of functions (or lambdas) defined inside."""
    out: dict[ast.AST, set[str]] = {}
    for fn in ast.walk(tree):
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = set()
            for sub in ast.walk(fn):
                if sub is not fn and isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(sub.name)
                elif isinstance(sub, ast.Assign) and isinstance(
                    sub.value, ast.Lambda
                ):
                    nested.update(
                        t.id for t in sub.targets if isinstance(t, ast.Name)
                    )
            out[fn] = nested
    return out


@register_rule
class WorkerPayloadRule(Rule):
    id = "R4"
    name = "worker-payload"
    description = (
        "no lambdas, closures, or bound methods as multiprocessing / "
        "worker-pool payloads — only module-level callables pickle and "
        "exist identically in children"
    )

    def check_file(self, ctx: FileContext):
        imports = ImportMap(ctx.tree)
        nested_by_fn = _nested_function_names(ctx.tree)
        # Map each call to its innermost enclosing function, for closure checks.
        enclosing: dict[ast.AST, ast.AST] = {}

        def fill(scope, current):
            for child in ast.iter_child_nodes(scope):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fill(child, child)
                else:
                    if isinstance(child, ast.Call):
                        enclosing[child] = current
                    fill(child, current)

        fill(ctx.tree, None)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            payloads = self._payloads(node)
            for payload in payloads:
                problem = self._classify(payload, imports, enclosing.get(node), nested_by_fn)
                if problem is not None:
                    yield self.finding(ctx, payload, (
                        f"{problem} passed as a worker payload — only "
                        "module-level callables survive pickling/spawn; "
                        "hoist it to module scope"
                    ))

    def _payloads(self, call: ast.Call) -> list[ast.expr]:
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        name = dotted_name(func) or ""
        payloads: list[ast.expr] = []
        if attr == "Process" or name.endswith(".Process") or name == "Process":
            payloads.extend(
                kw.value for kw in call.keywords if kw.arg == "target"
            )
        elif attr in SUBMIT_ATTRS:
            if call.args:
                payloads.append(call.args[0])
            payloads.extend(kw.value for kw in call.keywords if kw.arg == "func")
        return payloads

    def _classify(self, payload, imports: ImportMap, fn, nested_by_fn) -> str | None:
        if isinstance(payload, ast.Lambda):
            return "lambda"
        if isinstance(payload, ast.Call):
            # functools.partial(lambda ...) / partial over a nested def.
            inner = [payload.func] + list(payload.args)
            for sub in inner:
                verdict = self._classify(sub, imports, fn, nested_by_fn)
                if verdict is not None:
                    return verdict
            return None
        if isinstance(payload, ast.Attribute):
            root = payload.value
            if isinstance(root, ast.Name) and root.id == "self":
                return f"bound method self.{payload.attr}"
            # module.func canonicalizes through the imports; anything else
            # is an attribute of a runtime object — a bound method.
            if imports.canonical(payload) is None:
                return f"bound method {dotted_name(payload) or payload.attr!r}"
            return None
        if isinstance(payload, ast.Name) and fn is not None:
            if payload.id in nested_by_fn.get(fn, ()):
                return f"closure {payload.id!r} (defined in the enclosing function)"
        return None
