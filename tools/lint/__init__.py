"""``repro lint`` — AST-based contract linter for this repo's invariants.

The determinism, kernel-purity and resource-lifecycle guarantees that
the parity/chaos test suites check *dynamically* are enforced here
*statically*, so third-party-shaped code entering through the registry
and session seams fails fast instead of silently breaking bit-identical
replay.  See ``docs/ARCHITECTURE.md`` §12 for the rule table and
``tools/lint/rules/`` for the implementations.

Entry points::

    python -m tools.lint [paths…]      # from the repo root
    python -m repro lint [paths…]      # CLI subcommand, same engine

Programmatic use::

    from tools.lint import run_lint
    result = run_lint(repo_root, paths=("src",))
    assert result.ok, result.findings
"""

from tools.lint.base import FileContext, Finding, ImportMap, RepoContext, Rule
from tools.lint.engine import LintResult, run_lint
from tools.lint.rules import all_rules, register_rule, resolve_rules

__all__ = [
    "FileContext",
    "Finding",
    "ImportMap",
    "LintResult",
    "RepoContext",
    "Rule",
    "all_rules",
    "register_rule",
    "resolve_rules",
    "run_lint",
]
