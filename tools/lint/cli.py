"""``python -m tools.lint`` / ``repro lint`` command-line front end.

Exit codes: 0 clean (baselined/pragma-suppressed findings don't fail),
1 when any active finding remains, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.lint.engine import (
    DEFAULT_PATHS,
    default_baseline_path,
    run_lint,
    save_baseline,
)
from tools.lint.rules import all_rules, resolve_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based contract linter: determinism (R1/R5), kernel purity "
            "(R2), resource lifecycle (R3), worker payloads (R4), doc "
            "markers (R6), public API (R7)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint, relative to the repo root "
        f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root (default: the checkout containing tools/lint)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        dest="format_",
        metavar="{human,json}",
        help="output format (json emits the full LintResult document)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids/slugs to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: tools/lint/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            scope = "repo" if rule.scope == "repo" else "file"
            print(f"{rule.id}  {rule.name:<20} [{scope}] {rule.description}")
        return 0
    root = (
        Path(args.root).resolve()
        if args.root
        else Path(__file__).resolve().parents[2]
    )
    try:
        rules = resolve_rules(args.rules)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_lint(
            root, paths=args.paths, rules=rules, baseline_path=args.baseline
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_file = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    if args.update_baseline:
        save_baseline(baseline_file, result.findings + result.baselined)
        print(
            f"baseline updated: {len(result.findings) + len(result.baselined)} "
            f"finding(s) written to {baseline_file}"
        )
        return 0

    if args.format_ == "json":
        print(json.dumps(result.to_dict(), indent=2, ensure_ascii=False))
        return 0 if result.ok else 1

    for finding in result.findings:
        print(finding.format())
    notes = []
    if result.baselined:
        notes.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        notes.append(f"{len(result.suppressed)} pragma-suppressed")
    if result.stale_baseline:
        notes.append(f"{len(result.stale_baseline)} stale baseline entr(y/ies)")
        for entry in result.stale_baseline:
            print(
                f"note: stale baseline entry {entry['rule']} {entry['path']}: "
                f"{entry['message']}"
            )
    suffix = f" ({', '.join(notes)})" if notes else ""
    if result.ok:
        print(
            f"repro lint: clean — {result.files_checked} file(s), "
            f"{len(result.rules)} rule(s){suffix}"
        )
        return 0
    print(
        f"repro lint: {len(result.findings)} finding(s) across "
        f"{result.files_checked} file(s){suffix}"
    )
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
