"""Repo tooling: the ``tools.lint`` contract linter and repo check scripts."""
