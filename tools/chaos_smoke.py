#!/usr/bin/env python
"""Fault-injection smoke run for CI (next to the chaos test suite).

Runs the committed ``specs/smoke.json`` grid end to end with exactly one
injected cell failure, then resumes, asserting the full quarantine
lifecycle on the real spec (docs/ARCHITECTURE.md §11):

1. with a :class:`repro.faults.FaultPlan` targeting one cell and
   ``max_retries=0``, the grid *completes* — the targeted cell lands in
   the manifest as a quarantined ``"cell_error"`` row while every other
   cell succeeds;
2. re-running the same manifest with no plan installed re-attempts
   exactly the quarantined cell and finishes the grid;
3. the finished rows are identical (modulo runtime) to a clean run that
   never saw a fault — quarantine and resume must not perturb results.

Usage: ``python tools/chaos_smoke.py [repo_root]`` — the script puts
``<root>/src`` on ``sys.path`` itself and works in a temp results dir,
so no environment setup is needed.  Exit code is non-zero on any
violated invariant.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.grid import GridSpec, load_manifest, run_grid  # noqa: E402
from repro.faults import FaultPlan, FaultRule, fault_plan  # noqa: E402


def fail(message: str) -> None:
    print(f"chaos smoke FAILED: {message}")
    sys.exit(1)


def strip(row: dict) -> dict:
    return {k: v for k, v in row.items() if k != "runtime_s"}


def main() -> None:
    spec = GridSpec.from_json(str(ROOT / "specs" / "smoke.json"))
    cells = spec.cells()
    target = cells[0].cell_id
    with tempfile.TemporaryDirectory(prefix="chaos_smoke_") as tmp:
        manifest = str(Path(tmp) / "smoke.jsonl")

        plan = FaultPlan(
            [FaultRule(seam="cell.raise", key=target, count=10, message="chaos smoke")]
        )
        with fault_plan(plan):
            rows = run_grid(spec, manifest, max_retries=0, retry_backoff=0.0)
        errors = [row for row in rows if row.get("kind") == "cell_error"]
        if len(rows) != len(cells):
            fail(f"faulted run returned {len(rows)} rows for {len(cells)} cells")
        if [row["cell_id"] for row in errors] != [target]:
            fail(f"expected exactly cell {target} quarantined, got {errors!r}")
        if errors[0].get("error_type") != "FaultInjectedError":
            fail(f"unexpected quarantine error type: {errors[0]!r}")
        print(f"1/3 injected failure quarantined cell {target}, "
              f"{len(rows) - 1}/{len(cells)} cells completed")

        resumed = run_grid(spec, manifest)
        if any(row.get("kind") != "cell" for row in resumed):
            fail("resume left unfinished cells behind")
        _, manifest_rows = load_manifest(manifest)
        kinds = [row["kind"] for row in manifest_rows]
        if kinds.count("cell_error") != 1 or kinds.count("cell") != len(cells):
            fail(f"unexpected manifest history after resume: {kinds}")
        print("2/3 resume re-attempted the quarantined cell and completed the grid")

        clean = run_grid(spec, str(Path(tmp) / "clean.jsonl"))
        if [strip(r) for r in resumed] != [strip(r) for r in clean]:
            fail("resumed results differ from a never-faulted run")
        print("3/3 resumed results identical to a clean run")
    print("chaos smoke ok")


if __name__ == "__main__":
    main()
