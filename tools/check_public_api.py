#!/usr/bin/env python
"""Public-API surface check (run in CI next to the doc-marker check).

Three invariants, each cheap and each historically easy to break:

1. **`repro.__all__` is honest** — every advertised name imports and
   resolves to a real attribute (a rename that forgets the export list
   fails here, not in a user's shell).
2. **The unified-solver names exist** — ``solve``, ``EngineSpec``,
   ``AllocationSession`` and the registry functions are part of the
   contract documented in docs/ARCHITECTURE.md §9.
3. **Committed specs round-trip** — every ``specs/*.json`` must
   survive ``EngineSpec.from_dict(to_dict(...))`` unchanged: files with
   a ``"datasets"`` key are :class:`GridSpec`s whose ``config`` block is
   compiled to an :class:`EngineSpec` first (the exact path the grid
   runner takes); all other files are raw :class:`EngineSpec`s.

Usage: ``python tools/check_public_api.py [repo_root]`` — the script
puts ``<root>/src`` on ``sys.path`` itself, so no ``PYTHONPATH`` setup
is needed.  Exit code is non-zero on any failure, or when ``specs/``
contains no JSON at all (a wholesale deletion should fail loudly).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Unified-solver names that must stay in repro.__all__ (ARCHITECTURE §9).
API_CONTRACT = (
    "solve",
    "EngineSpec",
    "AllocationSession",
    "AlgorithmDef",
    "register_algorithm",
    "unregister_algorithm",
    "algorithm_names",
    "get_algorithm",
)


def check_all_surface(failures: list[str]) -> int:
    import repro

    checked = 0
    for name in repro.__all__:
        checked += 1
        if not hasattr(repro, name):
            failures.append(f"repro.__all__ advertises missing name {name!r}")
    for name in API_CONTRACT:
        if name not in repro.__all__:
            failures.append(f"unified-API name {name!r} missing from repro.__all__")
    return checked


def check_spec_round_trips(root: Path, failures: list[str]) -> int:
    from repro.api.spec import EngineSpec
    from repro.experiments.grid import GridSpec

    spec_files = sorted((root / "specs").glob("*.json"))
    if not spec_files:
        failures.append("specs/ holds no JSON files (committed specs deleted?)")
        return 0
    for path in spec_files:
        rel = path.relative_to(root)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{rel}: unreadable JSON — {exc}")
            continue
        try:
            if isinstance(data, dict) and "datasets" in data:
                grid = GridSpec.from_dict(data)
                # opt_lower needs a dataset at run time; any valid bound
                # exercises the same round-trip machinery.
                engine = grid.experiment_config().engine_spec(opt_lower=1.0)
            else:
                engine = EngineSpec.from_dict(data)
        except Exception as exc:
            failures.append(f"{rel}: does not compile to an EngineSpec — {exc}")
            continue
        encoded = json.loads(json.dumps(engine.to_dict()))
        if EngineSpec.from_dict(encoded) != engine:
            failures.append(f"{rel}: EngineSpec JSON round-trip is not the identity")
    return len(spec_files)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "src"))
    failures: list[str] = []
    names = check_all_surface(failures)
    specs = check_spec_round_trips(root, failures)
    if failures:
        print(f"{len(failures)} public-API check failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"public API ok: {names} __all__ names resolve, "
        f"{specs} committed spec(s) round-trip through EngineSpec"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
