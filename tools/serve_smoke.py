#!/usr/bin/env python
"""Serving-layer smoke run for CI (next to the serve test suite).

Boots a real ``python -m repro serve`` daemon process on the committed
``specs/smoke.json`` dataset/config, then asserts the service contract
end to end from outside the process:

1. the daemon prints its listen address and answers ``/healthz``;
2. a scripted query burst (both smoke algorithms, repeated) succeeds,
   repeats are byte-identical to their first responses, and ``/stats``
   shows the repeats were served warm off one pooled session;
3. ``SIGTERM`` drains cleanly: the process exits 0, prints its drain
   summary, and leaves no shared-memory segments behind.

Usage: ``python tools/serve_smoke.py [repo_root]`` — the script puts
``<root>/src`` on ``sys.path`` itself and passes it to the daemon, so
no environment setup is needed.  Exit code is non-zero on any violated
invariant.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

ROOT = (
    Path(sys.argv[1]).resolve()
    if len(sys.argv) > 1
    else Path(__file__).resolve().parents[1]
)
sys.path.insert(0, str(ROOT / "src"))

from repro.serve import client as serve_client  # noqa: E402

BOOT_TIMEOUT_S = 60
DRAIN_TIMEOUT_S = 60


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}")
    sys.exit(1)


def comparable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k not in ("runtime_s", "serve")}


def shm_segments() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux: nothing to check
        return set()
    return {p.name for p in shm.iterdir()}


def main() -> None:
    spec = json.loads((ROOT / "specs" / "smoke.json").read_text())
    (entry,) = spec["datasets"]
    config = spec["config"]
    before_shm = shm_segments()

    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--eps", str(config["eps"]),
            "--theta-cap", str(config["theta_cap"]),
            "--seed", str(spec["seed"]),
        ],
        cwd=str(ROOT),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    watchdog = threading.Timer(BOOT_TIMEOUT_S + DRAIN_TIMEOUT_S + 120, proc.kill)
    watchdog.start()
    try:
        line = proc.stdout.readline().strip()
        if "listening on" not in line:
            proc.kill()
            fail(f"expected a listen line, got {line!r}")
        addr = line.rsplit(" ", 1)[-1]
        print(f"# daemon up at {addr}")

        health = serve_client.healthz(addr)
        if health["status"] != "ok":
            fail(f"unexpected /healthz: {health}")

        # Scripted burst: every smoke algorithm twice, same seed — the
        # second pass must ride the warm session bit-identically.
        first_pass: dict[str, dict] = {}
        for algorithm in spec["algorithms"]:
            first_pass[algorithm] = serve_client.query(
                addr, dataset=dict(entry), algorithm=algorithm, seed=spec["seed"]
            )
        for algorithm in spec["algorithms"]:
            repeat = serve_client.query(
                addr, dataset=dict(entry), algorithm=algorithm, seed=spec["seed"]
            )
            if not repeat["serve"]["warm_session"]:
                fail(f"repeat of {algorithm} was not served warm")
            if comparable(repeat) != comparable(first_pass[algorithm]):
                fail(f"repeat of {algorithm} diverged from its first response")

        stats = serve_client.stats(addr)
        expected_warm = 2 * len(spec["algorithms"]) - 1  # one cold miss total
        if stats["pool"]["warm_hits"] != expected_warm:
            fail(
                f"expected {expected_warm} warm hits, /stats says "
                f"{stats['pool']['warm_hits']}"
            )
        if stats["pool"]["session_count"] != 1:
            fail(f"expected one pooled session: {stats['pool']['session_count']}")
        if stats["serve"]["solve_errors"] or stats["serve"]["admission_rejects"]:
            fail(f"burst hit errors/rejects: {stats['serve']}")
        print(
            f"# burst ok: served={stats['serve']['queries_served']} "
            f"warm_hits={stats['pool']['warm_hits']}"
        )

        proc.send_signal(signal.SIGTERM)
        try:
            out, _ = proc.communicate(timeout=DRAIN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not drain within the timeout after SIGTERM")
        if proc.returncode != 0:
            fail(f"daemon exited {proc.returncode} after SIGTERM:\n{out}")
        if "# drained:" not in out:
            fail(f"no drain summary in daemon output:\n{out}")
        leaked = shm_segments() - before_shm
        if leaked:
            fail(f"shared-memory segments leaked past drain: {sorted(leaked)}")
        print(f"# drain ok: exit={proc.returncode}")
    finally:
        watchdog.cancel()
        if proc.poll() is None:
            proc.kill()
    print("serve smoke PASSED")


if __name__ == "__main__":
    main()
